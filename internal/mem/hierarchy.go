package mem

import "mosaicsim/internal/config"

// Hierarchy wires per-core private caches to an optional shared LLC and a
// DRAM model (§V): each core has a cache queue ordered with respect to the
// hierarchy; the LLC forwards to DRAM.
type Hierarchy struct {
	cfg  config.MemConfig
	L1s  []*Cache
	L2s  []*Cache // nil when not configured
	LLC  *Cache   // nil when not configured
	DRAM Level
	// Dir is the optional coherence directory over the private stacks.
	Dir *Directory

	shared Level // the first level below the private stacks

	// Parallel-stepping staging (engaged only by soc's step engine; see
	// DESIGN.md §5e). cohStaging defers directory lookups and cross-core
	// invalidations from AccessAt to CommitStaged, which replays them in
	// core order at the serial join — the exact order sequential tile
	// stepping would have applied them in-place. tickStaging makes each
	// core's stagePort buffer shared-level accesses during a sharded
	// hierarchy tick; DrainTickStage replays them in core order.
	cohStaging  bool
	cohStaged   [][]cohAccess // per-core staged AccessAt calls
	tickStaging bool
	ports       []*stagePort
}

// cohAccess is one staged AccessAt call: the full argument list, replayed
// verbatim by CommitStaged.
type cohAccess struct {
	addr uint64
	size int
	kind Kind
	now  int64
	done func(now int64)
}

// stagePort sits between a core's bottom private cache and the shared level.
// Sequentially it is a transparent pass-through. During a sharded hierarchy
// tick (tickStaging) it buffers the core's shared-level accesses — miss
// fills and writebacks — on a per-core list so DrainTickStage can replay
// them in core order, which is exactly the order the sequential per-level
// tick loop issues them in (the shared level is only reached from the
// bottom private level of each stack).
type stagePort struct {
	h      *Hierarchy
	staged []stagedAccess
}

type stagedAccess struct {
	req *Request
	now int64
}

func (p *stagePort) Access(req *Request, now int64) {
	if p.h.tickStaging {
		p.staged = append(p.staged, stagedAccess{req, now})
		return
	}
	p.h.shared.Access(req, now)
}

func (p *stagePort) Tick(now int64)            { p.h.shared.Tick(now) }
func (p *stagePort) Busy() bool                { return p.h.shared.Busy() }
func (p *stagePort) NextEvent(now int64) int64 { return p.h.shared.NextEvent(now) }
func (p *stagePort) Events() int64             { return p.h.shared.Events() }

// NewHierarchy builds the hierarchy for numCores cores at the given clock.
func NewHierarchy(cfg config.MemConfig, numCores, clockMHz int) *Hierarchy {
	h := &Hierarchy{cfg: cfg}
	h.DRAM = NewDRAM(cfg.DRAM, clockMHz, cfg.L1.LineBytes)
	var shared Level = h.DRAM
	if cfg.LLC != nil {
		h.LLC = NewCache(*cfg.LLC, h.DRAM)
		shared = h.LLC
	}
	h.shared = shared
	if cfg.Directory {
		h.Dir = NewDirectory(cfg.DirInvCycles)
	}
	for i := 0; i < numCores; i++ {
		// Each core's bottom private level reaches the shared level through
		// its own stagePort, so a sharded tick can stage cross-core traffic.
		port := &stagePort{h: h}
		h.ports = append(h.ports, port)
		var per Level = port
		if cfg.L2 != nil {
			l2 := NewCache(*cfg.L2, port)
			h.L2s = append(h.L2s, l2)
			per = l2
		}
		h.L1s = append(h.L1s, NewCache(cfg.L1, per))
	}
	return h
}

// Access sends a demand request from a core into its private L1.
func (h *Hierarchy) Access(core int, addr uint64, size int, kind Kind, done func(now int64)) {
	req := getRequest()
	req.Addr, req.Size, req.Kind, req.Done = addr, size, kind, done
	h.L1s[core].Access(req, 0)
}

// AccessAt is Access with an explicit issue cycle. With the directory
// enabled, coherence actions happen first: remote copies are recalled and
// the request is delayed by the invalidation round trip. Under coherence
// staging (parallel tile stepping) the whole body — directory lookup,
// invalidations, writebacks, and the L1 enqueue — is deferred to
// CommitStaged: nothing in a core's step reads the state it would have
// changed (results arrive later through done callbacks fired by Tick), so
// replaying staged calls in core order at the serial join is bit-identical
// to applying them in-place in sequential tile order.
func (h *Hierarchy) AccessAt(core int, addr uint64, size int, kind Kind, now int64, done func(now int64)) {
	if h.cohStaging {
		h.cohStaged[core] = append(h.cohStaged[core], cohAccess{addr, size, kind, now, done})
		return
	}
	h.accessAt(core, addr, size, kind, now, done)
}

func (h *Hierarchy) accessAt(core int, addr uint64, size int, kind Kind, now int64, done func(now int64)) {
	if h.Dir != nil {
		line := addr / uint64(h.cfg.L1.LineBytes)
		penalty, invalidate := h.Dir.Access(core, line, kind)
		for _, victim := range invalidate {
			dirty := h.L1s[victim].Invalidate(line)
			if victim < len(h.L2s) {
				if h.L2s[victim].Invalidate(line) {
					dirty = true
				}
			}
			if dirty {
				// The recalled dirty copy flushes to the shared level.
				wb := getRequest()
				wb.Addr = line * uint64(h.cfg.L1.LineBytes)
				wb.Size = h.cfg.L1.LineBytes
				wb.Kind = Writeback
				h.shared.Access(wb, now)
			}
		}
		now += penalty
	}
	req := getRequest()
	req.Addr, req.Size, req.Kind, req.Done = addr, size, kind, done
	h.L1s[core].Access(req, now)
}

// SetCoherenceStaging switches AccessAt between in-place application (the
// sequential mode) and per-core staging for CommitStaged. The parallel step
// engine enables it for directory-coherent hierarchies; it is a no-op
// otherwise (AccessAt without a directory only touches the calling core's
// own L1, which its own worker owns).
func (h *Hierarchy) SetCoherenceStaging(on bool) {
	if on && h.cohStaged == nil {
		h.cohStaged = make([][]cohAccess, len(h.L1s))
	}
	h.cohStaging = on
}

// CommitStaged applies the coherence accesses staged during a parallel tile
// phase in core order — the deterministic (tile-position, issue-seq) total
// order sequential stepping interleaves them in, since tiles step in
// position order and each core stages its own calls in issue order.
func (h *Hierarchy) CommitStaged() {
	for core := range h.cohStaged {
		staged := h.cohStaged[core]
		for i := range staged {
			a := &staged[i]
			h.accessAt(core, a.addr, a.size, a.kind, a.now, a.done)
			*a = cohAccess{} // drop the done closure reference
		}
		h.cohStaged[core] = staged[:0]
	}
}

// Tick advances every level one cycle, DRAM first so fills propagate upward
// within the same cycle ordering each time.
func (h *Hierarchy) Tick(now int64) {
	h.TickShared(now)
	for _, l2 := range h.L2s {
		l2.Tick(now)
	}
	for _, l1 := range h.L1s {
		l1.Tick(now)
	}
}

// TickShared advances the shared levels (DRAM, then the LLC) one cycle. It
// must run before the private ticks — shared completions fill into private
// caches and core completion queues, all on the serial goroutine.
func (h *Hierarchy) TickShared(now int64) {
	h.DRAM.Tick(now)
	if h.LLC != nil {
		h.LLC.Tick(now)
	}
}

// TickCore advances one core's private stack (L2 first, then L1), mirroring
// the level order of the sequential Tick. Private stacks are independent:
// core i's caches are only touched by core i's requests and by shared-level
// completions (which TickShared already delivered), so distinct cores may
// tick concurrently. Shared-level accesses they emit are buffered by the
// core's stagePort while tick staging is engaged and drained in core order
// by DrainTickStage — reproducing the sequential all-L2s-then-all-L1s
// arrival order at the shared level, because with an L2 only L2 ticks reach
// it (L1 misses stop at the L2) and without one only L1 ticks do.
func (h *Hierarchy) TickCore(core int, now int64) {
	if core < len(h.L2s) {
		h.L2s[core].Tick(now)
	}
	h.L1s[core].Tick(now)
}

// BeginTickStage arms the per-core stagePorts for a sharded tick.
func (h *Hierarchy) BeginTickStage() { h.tickStaging = true }

// DrainTickStage disarms tick staging and forwards the buffered shared-level
// accesses in core order. New same-cycle enqueues at the shared level have
// ready cycles strictly beyond now, so draining after the private ticks is
// equivalent to the sequential interleaving.
func (h *Hierarchy) DrainTickStage() {
	h.tickStaging = false
	for _, p := range h.ports {
		for i := range p.staged {
			h.shared.Access(p.staged[i].req, p.staged[i].now)
			p.staged[i] = stagedAccess{}
		}
		p.staged = p.staged[:0]
	}
}

// Busy reports whether any level still has work in flight.
func (h *Hierarchy) Busy() bool {
	if h.DRAM.Busy() {
		return true
	}
	if h.LLC != nil && h.LLC.Busy() {
		return true
	}
	for _, l2 := range h.L2s {
		if l2.Busy() {
			return true
		}
	}
	for _, l1 := range h.L1s {
		if l1.Busy() {
			return true
		}
	}
	return false
}

// LineBytes returns the L1 line size.
func (h *Hierarchy) LineBytes() int { return h.cfg.L1.LineBytes }

// EnableDRAMAccessLog turns on arrival-time logging on the SimpleDRAM model
// (a no-op for other models), so a schedule recorder can later re-verify the
// bandwidth budget against shifted request timings.
func (h *Hierarchy) EnableDRAMAccessLog() {
	if d, ok := h.DRAM.(*SimpleDRAM); ok {
		d.EnableAccessLog()
	}
}

// DRAMAccessLog returns the SimpleDRAM arrival log (nil for other models or
// when logging was never enabled).
func (h *Hierarchy) DRAMAccessLog() []int64 {
	if d, ok := h.DRAM.(*SimpleDRAM); ok {
		return d.AccessLog()
	}
	return nil
}

// Progress sums the event counters of every level; two equal readings mean
// no level changed observable state in between.
func (h *Hierarchy) Progress() int64 {
	p := h.ProgressShared()
	for i := range h.L1s {
		p += h.ProgressCore(i)
	}
	return p
}

// ProgressShared sums the shared levels' event counters (the serial slice of
// the per-worker progress reduction).
func (h *Hierarchy) ProgressShared() int64 {
	p := h.DRAM.Events()
	if h.LLC != nil {
		p += h.LLC.Events()
	}
	return p
}

// ProgressCore sums one private stack's event counters, so workers can fold
// their owned cores into per-worker progress partials (the sum is
// order-independent modulo 2^64).
func (h *Hierarchy) ProgressCore(core int) int64 {
	p := h.L1s[core].Events()
	if core < len(h.L2s) {
		p += h.L2s[core].Events()
	}
	return p
}

// NextEvent returns the earliest self-scheduled event across all levels
// (HorizonNone when the whole hierarchy is drained).
func (h *Hierarchy) NextEvent(now int64) int64 {
	hz := h.DRAM.NextEvent(now)
	if h.LLC != nil {
		if e := h.LLC.NextEvent(now); e < hz {
			hz = e
		}
	}
	for _, l2 := range h.L2s {
		if e := l2.NextEvent(now); e < hz {
			hz = e
		}
	}
	for _, l1 := range h.L1s {
		if e := l1.NextEvent(now); e < hz {
			hz = e
		}
	}
	return hz
}

// ThrottleStalls reads the DRAM bandwidth-throttle counter (SimpleDRAM
// only), which advances every stalled cycle and is therefore replayed — not
// skipped — over elided cycles.
func (h *Hierarchy) ThrottleStalls() int64 {
	if d, ok := h.DRAM.(*SimpleDRAM); ok {
		return d.Stats.Throttled
	}
	return 0
}

// AddThrottleStalls replays n elided cycles of throttle accounting.
func (h *Hierarchy) AddThrottleStalls(n int64) {
	if d, ok := h.DRAM.(*SimpleDRAM); ok {
		d.AddThrottleStalls(n)
	}
}

// TotalStats sums cache stats across a level slice.
func TotalStats(caches []*Cache) CacheStats {
	var t CacheStats
	for _, c := range caches {
		s := c.Stats
		t.Accesses += s.Accesses
		t.Hits += s.Hits
		t.Misses += s.Misses
		t.Coalesced += s.Coalesced
		t.MSHRStalls += s.MSHRStalls
		t.Evictions += s.Evictions
		t.Writebacks += s.Writebacks
		t.PrefetchIssued += s.PrefetchIssued
		t.PrefetchUseful += s.PrefetchUseful
		t.WritebackMisses += s.WritebackMisses
	}
	return t
}

// DRAMStatsOf extracts the stats from either DRAM model.
func DRAMStatsOf(l Level) DRAMStats {
	switch d := l.(type) {
	case *SimpleDRAM:
		return d.Stats
	case *BankedDRAM:
		return d.Stats
	}
	return DRAMStats{}
}
