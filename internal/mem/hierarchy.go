package mem

import "mosaicsim/internal/config"

// Hierarchy wires per-core private caches to an optional shared LLC and a
// DRAM model (§V): each core has a cache queue ordered with respect to the
// hierarchy; the LLC forwards to DRAM.
type Hierarchy struct {
	cfg  config.MemConfig
	L1s  []*Cache
	L2s  []*Cache // nil when not configured
	LLC  *Cache   // nil when not configured
	DRAM Level
	// Dir is the optional coherence directory over the private stacks.
	Dir *Directory

	shared Level // the first level below the private stacks
}

// NewHierarchy builds the hierarchy for numCores cores at the given clock.
func NewHierarchy(cfg config.MemConfig, numCores, clockMHz int) *Hierarchy {
	h := &Hierarchy{cfg: cfg}
	h.DRAM = NewDRAM(cfg.DRAM, clockMHz, cfg.L1.LineBytes)
	var shared Level = h.DRAM
	if cfg.LLC != nil {
		h.LLC = NewCache(*cfg.LLC, h.DRAM)
		shared = h.LLC
	}
	h.shared = shared
	if cfg.Directory {
		h.Dir = NewDirectory(cfg.DirInvCycles)
	}
	for i := 0; i < numCores; i++ {
		per := shared
		if cfg.L2 != nil {
			l2 := NewCache(*cfg.L2, shared)
			h.L2s = append(h.L2s, l2)
			per = l2
		}
		h.L1s = append(h.L1s, NewCache(cfg.L1, per))
	}
	return h
}

// Access sends a demand request from a core into its private L1.
func (h *Hierarchy) Access(core int, addr uint64, size int, kind Kind, done func(now int64)) {
	req := getRequest()
	req.Addr, req.Size, req.Kind, req.Done = addr, size, kind, done
	h.L1s[core].Access(req, 0)
}

// AccessAt is Access with an explicit issue cycle. With the directory
// enabled, coherence actions happen first: remote copies are recalled and
// the request is delayed by the invalidation round trip.
func (h *Hierarchy) AccessAt(core int, addr uint64, size int, kind Kind, now int64, done func(now int64)) {
	if h.Dir != nil {
		line := addr / uint64(h.cfg.L1.LineBytes)
		penalty, invalidate := h.Dir.Access(core, line, kind)
		for _, victim := range invalidate {
			dirty := h.L1s[victim].Invalidate(line)
			if victim < len(h.L2s) {
				if h.L2s[victim].Invalidate(line) {
					dirty = true
				}
			}
			if dirty {
				// The recalled dirty copy flushes to the shared level.
				wb := getRequest()
				wb.Addr = line * uint64(h.cfg.L1.LineBytes)
				wb.Size = h.cfg.L1.LineBytes
				wb.Kind = Writeback
				h.shared.Access(wb, now)
			}
		}
		now += penalty
	}
	req := getRequest()
	req.Addr, req.Size, req.Kind, req.Done = addr, size, kind, done
	h.L1s[core].Access(req, now)
}

// Tick advances every level one cycle, DRAM first so fills propagate upward
// within the same cycle ordering each time.
func (h *Hierarchy) Tick(now int64) {
	h.DRAM.Tick(now)
	if h.LLC != nil {
		h.LLC.Tick(now)
	}
	for _, l2 := range h.L2s {
		l2.Tick(now)
	}
	for _, l1 := range h.L1s {
		l1.Tick(now)
	}
}

// Busy reports whether any level still has work in flight.
func (h *Hierarchy) Busy() bool {
	if h.DRAM.Busy() {
		return true
	}
	if h.LLC != nil && h.LLC.Busy() {
		return true
	}
	for _, l2 := range h.L2s {
		if l2.Busy() {
			return true
		}
	}
	for _, l1 := range h.L1s {
		if l1.Busy() {
			return true
		}
	}
	return false
}

// LineBytes returns the L1 line size.
func (h *Hierarchy) LineBytes() int { return h.cfg.L1.LineBytes }

// EnableDRAMAccessLog turns on arrival-time logging on the SimpleDRAM model
// (a no-op for other models), so a schedule recorder can later re-verify the
// bandwidth budget against shifted request timings.
func (h *Hierarchy) EnableDRAMAccessLog() {
	if d, ok := h.DRAM.(*SimpleDRAM); ok {
		d.EnableAccessLog()
	}
}

// DRAMAccessLog returns the SimpleDRAM arrival log (nil for other models or
// when logging was never enabled).
func (h *Hierarchy) DRAMAccessLog() []int64 {
	if d, ok := h.DRAM.(*SimpleDRAM); ok {
		return d.AccessLog()
	}
	return nil
}

// Progress sums the event counters of every level; two equal readings mean
// no level changed observable state in between.
func (h *Hierarchy) Progress() int64 {
	p := h.DRAM.Events()
	if h.LLC != nil {
		p += h.LLC.Events()
	}
	for _, l2 := range h.L2s {
		p += l2.Events()
	}
	for _, l1 := range h.L1s {
		p += l1.Events()
	}
	return p
}

// NextEvent returns the earliest self-scheduled event across all levels
// (HorizonNone when the whole hierarchy is drained).
func (h *Hierarchy) NextEvent(now int64) int64 {
	hz := h.DRAM.NextEvent(now)
	if h.LLC != nil {
		if e := h.LLC.NextEvent(now); e < hz {
			hz = e
		}
	}
	for _, l2 := range h.L2s {
		if e := l2.NextEvent(now); e < hz {
			hz = e
		}
	}
	for _, l1 := range h.L1s {
		if e := l1.NextEvent(now); e < hz {
			hz = e
		}
	}
	return hz
}

// ThrottleStalls reads the DRAM bandwidth-throttle counter (SimpleDRAM
// only), which advances every stalled cycle and is therefore replayed — not
// skipped — over elided cycles.
func (h *Hierarchy) ThrottleStalls() int64 {
	if d, ok := h.DRAM.(*SimpleDRAM); ok {
		return d.Stats.Throttled
	}
	return 0
}

// AddThrottleStalls replays n elided cycles of throttle accounting.
func (h *Hierarchy) AddThrottleStalls(n int64) {
	if d, ok := h.DRAM.(*SimpleDRAM); ok {
		d.AddThrottleStalls(n)
	}
}

// TotalStats sums cache stats across a level slice.
func TotalStats(caches []*Cache) CacheStats {
	var t CacheStats
	for _, c := range caches {
		s := c.Stats
		t.Accesses += s.Accesses
		t.Hits += s.Hits
		t.Misses += s.Misses
		t.Coalesced += s.Coalesced
		t.MSHRStalls += s.MSHRStalls
		t.Evictions += s.Evictions
		t.Writebacks += s.Writebacks
		t.PrefetchIssued += s.PrefetchIssued
		t.PrefetchUseful += s.PrefetchUseful
		t.WritebackMisses += s.WritebackMisses
	}
	return t
}

// DRAMStatsOf extracts the stats from either DRAM model.
func DRAMStatsOf(l Level) DRAMStats {
	switch d := l.(type) {
	case *SimpleDRAM:
		return d.Stats
	case *BankedDRAM:
		return d.Stats
	}
	return DRAMStats{}
}
