package mem

import (
	"mosaicsim/internal/config"
)

// DRAMStats counts DRAM events.
type DRAMStats struct {
	Reads      int64
	Writebacks int64
	Bytes      int64
	Throttled  int64 // completions delayed by the bandwidth cap
	RowHits    int64 // banked model only
	RowMisses  int64 // banked model only
	Conflicts  int64 // banked model only
}

// reqHeap is a min-heap of requests keyed by earliest completion time.
type reqItem struct {
	ready int64
	seq   int64
	req   *Request
}

type reqHeap []reqItem

func (h reqHeap) Len() int { return len(h) }

func (h reqHeap) less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].seq < h[j].seq
}

// push and pop replicate container/heap's sift sequence without boxing each
// reqItem through an interface (an allocation per queue operation on the
// miss path).
func (h *reqHeap) push(v reqItem) {
	a := append(*h, v)
	*h = a
	j := len(a) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !a.less(j, i) {
			break
		}
		a[i], a[j] = a[j], a[i]
		j = i
	}
}

func (h *reqHeap) pop() reqItem {
	a := *h
	n := len(a) - 1
	a[0], a[n] = a[n], a[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && a.less(j2, j) {
			j = j2
		}
		if !a.less(j, i) {
			break
		}
		a[i], a[j] = a[j], a[i]
		i = j
	}
	v := a[n]
	a[n] = reqItem{}
	*h = a[:n]
	return v
}

// SimpleDRAM is the paper's in-house DRAM model (§V-B): every request waits
// at least MinLatency, and completions are throttled to the configured
// maximum bandwidth per epoch. Requests past the epoch budget wait for the
// next epoch, modeling bandwidth contention.
type SimpleDRAM struct {
	Stats       DRAMStats
	minLat      int64
	epochCycles int64
	maxPerEpoch int64
	lineBytes   int64

	pq       reqHeap
	seq      int64
	curEpoch int64
	used     int64
	events   int64

	logOn     bool
	accessLog []int64 // arrival cycles, recorded when logOn
}

// SimpleDRAMBudget returns the epoch length and per-epoch line budget the
// simple model enforces for a given clock and line size — the one bandwidth
// formula, shared by the model itself and by the schedule-replay engine,
// which must re-derive the budget for swept bandwidth parameters.
func SimpleDRAMBudget(cfg config.DRAMConfig, clockMHz, lineBytes int) (epochCycles, maxPerEpoch int64) {
	bytesPerCycle := cfg.BandwidthGBs * 1e9 / (float64(clockMHz) * 1e6)
	epoch := cfg.EpochCycles
	if epoch <= 0 {
		epoch = 100
	}
	maxLines := int64(bytesPerCycle * float64(epoch) / float64(lineBytes))
	if maxLines < 1 {
		maxLines = 1
	}
	return epoch, maxLines
}

// NewSimpleDRAM builds a SimpleDRAM for a core clock in MHz; bandwidth is
// converted to lines per epoch.
func NewSimpleDRAM(cfg config.DRAMConfig, clockMHz int, lineBytes int) *SimpleDRAM {
	epoch, maxLines := SimpleDRAMBudget(cfg, clockMHz, lineBytes)
	return &SimpleDRAM{
		minLat:      cfg.MinLatency,
		epochCycles: epoch,
		maxPerEpoch: maxLines,
		lineBytes:   int64(lineBytes),
		curEpoch:    -1,
	}
}

// MaxLinesPerEpoch exposes the computed bandwidth budget (for tests).
func (d *SimpleDRAM) MaxLinesPerEpoch() int64 { return d.maxPerEpoch }

// EnableAccessLog starts recording the arrival cycle of every subsequent
// access. The schedule recorder uses the log to re-verify the epoch budget
// when replaying the schedule under shifted timings or a new bandwidth.
func (d *SimpleDRAM) EnableAccessLog() { d.logOn = true }

// AccessLog returns the recorded arrival cycles, in arrival order.
func (d *SimpleDRAM) AccessLog() []int64 { return d.accessLog }

// Access implements Level.
func (d *SimpleDRAM) Access(req *Request, now int64) {
	if req.Kind == Writeback {
		d.Stats.Writebacks++
	} else {
		d.Stats.Reads++
	}
	d.Stats.Bytes += int64(req.Size)
	if d.logOn {
		d.accessLog = append(d.accessLog, now)
	}
	d.seq++
	d.events++
	d.pq.push(reqItem{ready: now + d.minLat, seq: d.seq, req: req})
}

// Busy implements Level.
func (d *SimpleDRAM) Busy() bool { return d.pq.Len() > 0 }

// Events implements Level.
func (d *SimpleDRAM) Events() int64 { return d.events }

// NextEvent implements Level. A throttled DRAM promises nothing before the
// epoch boundary that resets the bandwidth budget — but it still reports the
// head's due cycle when that comes first, because the per-cycle Throttled
// stall accrual starts there and the Interleaver re-samples its stall deltas
// at every horizon.
func (d *SimpleDRAM) NextEvent(now int64) int64 {
	if d.pq.Len() == 0 {
		return HorizonNone
	}
	ready := d.pq[0].ready
	if d.used >= d.maxPerEpoch && now/d.epochCycles == d.curEpoch {
		boundary := (now/d.epochCycles + 1) * d.epochCycles
		if ready > now && ready < boundary {
			return ready
		}
		return boundary
	}
	if ready <= now {
		return now + 1
	}
	return ready
}

// AddThrottleStalls replays the per-cycle throttle accounting for n elided
// ticks of a frozen (due-but-over-budget) state.
func (d *SimpleDRAM) AddThrottleStalls(n int64) { d.Stats.Throttled += n }

// Tick implements Level: returns as many minimum-latency-served requests as
// the epoch's bandwidth budget allows.
func (d *SimpleDRAM) Tick(now int64) {
	epoch := now / d.epochCycles
	if epoch != d.curEpoch {
		d.curEpoch = epoch
		d.used = 0
	}
	for d.pq.Len() > 0 && d.pq[0].ready <= now {
		if d.used >= d.maxPerEpoch {
			d.Stats.Throttled++
			return
		}
		it := d.pq.pop()
		d.used++
		d.events++
		if it.req.Done != nil {
			it.req.Done(now)
		}
		putRequest(it.req)
	}
}

// BankedDRAM is the cycle-level bank/row model standing in for DRAMSim2
// (§V-B): open-page row buffers per bank, FR-FCFS scheduling, and DDR-style
// tRCD/tRP/tCAS/tBurst timing. It is slower to simulate than SimpleDRAM but
// captures row locality and bank conflicts.
type BankedDRAM struct {
	Stats DRAMStats
	cfg   config.DRAMConfig

	queue  []bankedReq
	banks  []bankState
	done   reqHeap
	seq    int64
	events int64
}

type bankedReq struct {
	req  *Request
	bank int
	row  uint64
	seq  int64
}

type bankState struct {
	openRow  uint64
	hasRow   bool
	nextFree int64
}

// NewBankedDRAM builds the banked model.
func NewBankedDRAM(cfg config.DRAMConfig) *BankedDRAM {
	nb := cfg.Channels * cfg.Banks
	if nb <= 0 {
		nb = 16
	}
	return &BankedDRAM{cfg: cfg, banks: make([]bankState, nb)}
}

// Access implements Level.
func (d *BankedDRAM) Access(req *Request, now int64) {
	if req.Kind == Writeback {
		d.Stats.Writebacks++
	} else {
		d.Stats.Reads++
	}
	d.Stats.Bytes += int64(req.Size)
	rowBytes := uint64(d.cfg.RowBytes)
	if rowBytes == 0 {
		rowBytes = 2048
	}
	row := req.Addr / rowBytes
	bank := int(row) % len(d.banks)
	d.seq++
	d.events++
	d.queue = append(d.queue, bankedReq{req: req, bank: bank, row: row, seq: d.seq})
}

// Busy implements Level.
func (d *BankedDRAM) Busy() bool { return len(d.queue) > 0 || d.done.Len() > 0 }

// Events implements Level.
func (d *BankedDRAM) Events() int64 { return d.events }

// NextEvent implements Level: the earliest of the next completion and the
// next bank becoming free for a queued request. A request whose bank is free
// now may only be deferred by channel arbitration, i.e. by one cycle.
func (d *BankedDRAM) NextEvent(now int64) int64 {
	h := HorizonNone
	if d.done.Len() > 0 && d.done[0].ready < h {
		h = d.done[0].ready
	}
	for i := range d.queue {
		nf := d.banks[d.queue[i].bank].nextFree
		if nf <= now {
			return now + 1
		}
		if nf < h {
			h = nf
		}
	}
	if h <= now {
		return now + 1
	}
	return h
}

// Tick implements Level: FR-FCFS — issue row hits first, then the oldest
// request whose bank is free; one issue per channel per cycle.
func (d *BankedDRAM) Tick(now int64) {
	for d.done.Len() > 0 && d.done[0].ready <= now {
		it := d.done.pop()
		d.events++
		if it.req.Done != nil {
			it.req.Done(now)
		}
		putRequest(it.req)
	}
	channels := d.cfg.Channels
	if channels <= 0 {
		channels = 1
	}
	for ch := 0; ch < channels; ch++ {
		idx := d.pick(now, ch, channels)
		if idx < 0 {
			continue
		}
		br := d.queue[idx]
		d.queue = append(d.queue[:idx], d.queue[idx+1:]...)
		b := &d.banks[br.bank]
		var lat int64
		switch {
		case b.hasRow && b.openRow == br.row:
			d.Stats.RowHits++
			lat = d.cfg.TCAS + d.cfg.TBurst
		case !b.hasRow:
			d.Stats.RowMisses++
			lat = d.cfg.TRCD + d.cfg.TCAS + d.cfg.TBurst
		default:
			d.Stats.Conflicts++
			lat = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS + d.cfg.TBurst
		}
		b.hasRow = true
		b.openRow = br.row
		b.nextFree = now + lat
		d.events++
		d.done.push(reqItem{ready: now + lat, seq: br.seq, req: br.req})
	}
}

// pick selects the next request for a channel: first ready row hit, else the
// oldest request whose bank is free.
func (d *BankedDRAM) pick(now int64, ch, channels int) int {
	oldest := -1
	for i, br := range d.queue {
		if br.bank%channels != ch {
			continue
		}
		b := &d.banks[br.bank]
		if b.nextFree > now {
			continue
		}
		if b.hasRow && b.openRow == br.row {
			return i // row hit wins immediately (FR-FCFS)
		}
		if oldest < 0 || br.seq < d.queue[oldest].seq {
			oldest = i
		}
	}
	return oldest
}

// NewDRAM constructs the configured DRAM model.
func NewDRAM(cfg config.DRAMConfig, clockMHz, lineBytes int) Level {
	switch cfg.Model {
	case config.DRAMBanked:
		return NewBankedDRAM(cfg)
	default:
		return NewSimpleDRAM(cfg, clockMHz, lineBytes)
	}
}
