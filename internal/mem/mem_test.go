package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mosaicsim/internal/config"
)

func testCacheCfg(name string, sizeKB int, latency int64, prefetch int) config.CacheConfig {
	return config.CacheConfig{
		Name: name, SizeKB: sizeKB, LineBytes: 64, Assoc: 4,
		LatencyCycles: latency, MSHRs: 8, PortsPerCycle: 2, PrefetchDegree: prefetch,
	}
}

func simpleHier(prefetch int) *Hierarchy {
	cfg := config.MemConfig{
		L1: testCacheCfg("L1", 4, 1, prefetch),
		DRAM: config.DRAMConfig{
			Model: config.DRAMSimple, MinLatency: 100, BandwidthGBs: 16, EpochCycles: 100,
		},
	}
	return NewHierarchy(cfg, 1, 2000)
}

// run ticks the hierarchy until pred is true or the limit is hit, returning
// the cycle pred first held (or -1).
func run(h *Hierarchy, limit int64, pred func() bool) int64 {
	for now := int64(0); now < limit; now++ {
		h.Tick(now)
		if pred() {
			return now
		}
	}
	return -1
}

func TestColdMissThenHit(t *testing.T) {
	h := simpleHier(0)
	var missDone, hitDone int64 = -1, -1
	h.AccessAt(0, 0x10000, 8, Read, 0, func(now int64) { missDone = now })
	end := run(h, 10000, func() bool { return missDone >= 0 })
	if end < 0 {
		t.Fatal("miss never completed")
	}
	if missDone < 100 {
		t.Errorf("cold miss completed at %d, must include DRAM latency (>=100)", missDone)
	}
	start := missDone + 1
	h.AccessAt(0, 0x10008, 8, Read, start, func(now int64) { hitDone = now })
	for now := start; now < start+100; now++ {
		h.Tick(now)
	}
	if hitDone < 0 {
		t.Fatal("hit never completed")
	}
	if lat := hitDone - start; lat > 5 {
		t.Errorf("hit latency = %d, want ~1", lat)
	}
	s := h.L1s[0].Stats
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats: hits=%d misses=%d, want 1/1", s.Hits, s.Misses)
	}
}

func TestMSHRCoalescing(t *testing.T) {
	h := simpleHier(0)
	doneCount := 0
	for i := 0; i < 4; i++ {
		h.AccessAt(0, 0x20000+uint64(i*8), 8, Read, 0, func(now int64) { doneCount++ })
	}
	if end := run(h, 10000, func() bool { return doneCount == 4 }); end < 0 {
		t.Fatal("requests never completed")
	}
	s := h.L1s[0].Stats
	if s.Coalesced != 3 {
		t.Errorf("coalesced = %d, want 3 (same line)", s.Coalesced)
	}
	dram := DRAMStatsOf(h.DRAM)
	if dram.Reads != 1 {
		t.Errorf("DRAM reads = %d, want 1 (one line fill)", dram.Reads)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	h := simpleHier(0)
	// 4KB cache, 64B lines, 4-way: 16 sets. Write 3 passes of the same set
	// to force dirty evictions: lines mapping to set 0 are 16 lines apart.
	done := 0
	total := 0
	setStride := uint64(16 * 64)
	for i := 0; i < 8; i++ {
		h.AccessAt(0, 0x40000+uint64(i)*setStride, 8, Write, int64(i), func(now int64) { done++ })
		total++
	}
	if end := run(h, 100000, func() bool { return done == total && !h.Busy() }); end < 0 {
		t.Fatal("writes never completed")
	}
	s := h.L1s[0].Stats
	if s.Evictions < 4 {
		t.Errorf("evictions = %d, want >=4", s.Evictions)
	}
	if s.Writebacks < 4 {
		t.Errorf("writebacks = %d, want >=4 (all lines dirty)", s.Writebacks)
	}
	dram := DRAMStatsOf(h.DRAM)
	if dram.Writebacks < 4 {
		t.Errorf("DRAM writebacks = %d, want >=4", dram.Writebacks)
	}
}

func TestAtomicDirtiesLine(t *testing.T) {
	h := simpleHier(0)
	done := 0
	setStride := uint64(16 * 64)
	for i := 0; i < 5; i++ {
		h.AccessAt(0, 0x40000+uint64(i)*setStride, 8, Atomic, int64(i), func(now int64) { done++ })
	}
	if end := run(h, 100000, func() bool { return done == 5 && !h.Busy() }); end < 0 {
		t.Fatal("atomics never completed")
	}
	if h.L1s[0].Stats.Writebacks < 1 {
		t.Error("atomic-dirtied victim line was not written back")
	}
}

func TestPrefetcherDetectsStream(t *testing.T) {
	withPf := simpleHier(4)
	noPf := simpleHier(0)
	measure := func(h *Hierarchy) (int64, CacheStats) {
		var totalLat int64
		now := int64(0)
		for i := 0; i < 64; i++ {
			done := int64(-1)
			issue := now
			h.AccessAt(0, 0x80000+uint64(i*64), 8, Read, issue, func(t int64) { done = t })
			for done < 0 {
				h.Tick(now)
				now++
			}
			totalLat += done - issue
			now++
		}
		return totalLat, h.L1s[0].Stats
	}
	latPf, statsPf := measure(withPf)
	latNo, _ := measure(noPf)
	if statsPf.PrefetchIssued == 0 {
		t.Fatal("stream prefetcher never fired on a sequential scan")
	}
	if statsPf.PrefetchUseful == 0 {
		t.Error("no demand hits on prefetched lines")
	}
	if latPf >= latNo {
		t.Errorf("prefetching did not help: %d cycles vs %d without", latPf, latNo)
	}
}

func TestSimpleDRAMMinLatency(t *testing.T) {
	d := NewSimpleDRAM(config.DRAMConfig{Model: config.DRAMSimple, MinLatency: 150, BandwidthGBs: 100, EpochCycles: 100}, 2000, 64)
	var done int64 = -1
	d.Access(&Request{Addr: 64, Size: 64, Kind: Read, Done: func(now int64) { done = now }}, 10)
	for now := int64(0); now < 1000 && done < 0; now++ {
		d.Tick(now)
	}
	if done < 160 {
		t.Errorf("completed at %d, want >= issue(10) + 150", done)
	}
}

func TestSimpleDRAMBandwidthThrottling(t *testing.T) {
	run := func(bwGBs float64) int64 {
		d := NewSimpleDRAM(config.DRAMConfig{Model: config.DRAMSimple, MinLatency: 10, BandwidthGBs: bwGBs, EpochCycles: 100}, 2000, 64)
		remaining := 200
		for i := 0; i < 200; i++ {
			d.Access(&Request{Addr: uint64(i * 64), Size: 64, Kind: Read, Done: func(now int64) { remaining-- }}, 0)
		}
		for now := int64(0); now < 1_000_000; now++ {
			d.Tick(now)
			if remaining == 0 {
				return now
			}
		}
		return -1
	}
	slow := run(1)
	fast := run(64)
	if slow < 0 || fast < 0 {
		t.Fatal("requests never drained")
	}
	if slow <= fast*4 {
		t.Errorf("bandwidth throttling ineffective: 1GB/s drained in %d, 64GB/s in %d", slow, fast)
	}
}

func TestSimpleDRAMBudgetComputation(t *testing.T) {
	// 16 GB/s at 2 GHz = 8 B/cycle = 800 B per 100-cycle epoch = 12 lines.
	d := NewSimpleDRAM(config.DRAMConfig{MinLatency: 10, BandwidthGBs: 16, EpochCycles: 100}, 2000, 64)
	if got := d.MaxLinesPerEpoch(); got != 12 {
		t.Errorf("MaxLinesPerEpoch = %d, want 12", got)
	}
}

func TestBankedDRAMRowLocality(t *testing.T) {
	cfg := config.BankedDRAMDefaults(24)
	drain := func(addrs []uint64) (int64, DRAMStats) {
		d := NewBankedDRAM(cfg)
		remaining := len(addrs)
		for _, a := range addrs {
			d.Access(&Request{Addr: a, Size: 64, Kind: Read, Done: func(now int64) { remaining-- }}, 0)
		}
		for now := int64(0); now < 1_000_000; now++ {
			d.Tick(now)
			if remaining == 0 {
				return now, d.Stats
			}
		}
		return -1, d.Stats
	}
	// Sequential within rows: mostly row hits.
	var seq []uint64
	for i := 0; i < 64; i++ {
		seq = append(seq, uint64(i*64))
	}
	seqEnd, seqStats := drain(seq)
	if seqStats.RowHits == 0 {
		t.Error("sequential stream produced no row hits")
	}
	// Same bank, alternating rows: all conflicts.
	rowBytes := uint64(cfg.RowBytes)
	banks := uint64(cfg.Channels * cfg.Banks)
	var conf []uint64
	for i := 0; i < 64; i++ {
		row := uint64(i%2) * banks // rows that map to bank 0
		conf = append(conf, (row*rowBytes)+(uint64(i/2)%4)*64)
	}
	confEnd, confStats := drain(conf)
	if confStats.Conflicts == 0 {
		t.Error("alternating-row stream produced no bank conflicts")
	}
	if seqEnd <= 0 || confEnd <= 0 {
		t.Fatal("streams never drained")
	}
	if confEnd <= seqEnd {
		t.Errorf("bank conflicts should be slower: conflict=%d vs sequential=%d", confEnd, seqEnd)
	}
}

func TestMSHRStallRetries(t *testing.T) {
	cfg := config.MemConfig{
		L1:   config.CacheConfig{Name: "L1", SizeKB: 4, LineBytes: 64, Assoc: 4, LatencyCycles: 1, MSHRs: 2, PortsPerCycle: 4},
		DRAM: config.DRAMConfig{Model: config.DRAMSimple, MinLatency: 200, BandwidthGBs: 64, EpochCycles: 100},
	}
	h := NewHierarchy(cfg, 1, 2000)
	done := 0
	for i := 0; i < 8; i++ {
		h.AccessAt(0, uint64(0x10000+i*4096), 8, Read, 0, func(now int64) { done++ })
	}
	if end := run(h, 100000, func() bool { return done == 8 }); end < 0 {
		t.Fatal("requests starved behind full MSHRs")
	}
	if h.L1s[0].Stats.MSHRStalls == 0 {
		t.Error("expected MSHR stalls with 8 distinct misses and 2 MSHRs")
	}
}

// holdLevel is a next level that parks every fill until released, so tests
// control exactly when an MSHR frees.
type holdLevel struct {
	pending []*Request
}

func (h *holdLevel) Access(r *Request, now int64) { h.pending = append(h.pending, r) }
func (h *holdLevel) Tick(int64)                   {}
func (h *holdLevel) Busy() bool                   { return len(h.pending) > 0 }
func (h *holdLevel) NextEvent(int64) int64        { return HorizonNone }
func (h *holdLevel) Events() int64                { return 0 }
func (h *holdLevel) release(now int64) {
	for _, r := range h.pending {
		if r.Done != nil {
			r.Done(now)
		}
	}
	h.pending = nil
}

// TestMSHRRetryNotBlockedByLaterEntries: an MSHR-stall retry (ready = now+1)
// must be processed as soon as the MSHR frees, not wait behind a later entry
// with a larger ready time. The FIFO inq head-of-line blocked exactly this.
func TestMSHRRetryNotBlockedByLaterEntries(t *testing.T) {
	next := &holdLevel{}
	cfg := config.CacheConfig{Name: "L1", SizeKB: 4, LineBytes: 64, Assoc: 4,
		LatencyCycles: 20, MSHRs: 1, PortsPerCycle: 4}
	c := NewCache(cfg, next)
	// A (due t=20) takes the only MSHR; its fill is held until t=45.
	// B (due t=40) stalls on the full MSHR and retries from t=41.
	// C (due t=60) is a later long-latency entry queued behind B's retries.
	var doneB int64 = -1
	c.Access(&Request{Addr: 0x00000, Size: 8, Kind: Read, Done: func(int64) {}}, 0)
	c.Access(&Request{Addr: 0x10000, Size: 8, Kind: Read, Done: func(at int64) { doneB = at }}, 20)
	c.Access(&Request{Addr: 0x20000, Size: 8, Kind: Read, Done: func(int64) {}}, 40)
	for now := int64(0); now <= 100; now++ {
		c.Tick(now)
		if now >= 45 {
			next.release(now)
		}
	}
	if c.Stats.MSHRStalls == 0 {
		t.Fatal("scenario did not exercise MSHR stalls")
	}
	if doneB < 0 {
		t.Fatal("stalled request never completed")
	}
	if doneB >= 60 {
		t.Errorf("retry completed at %d: head-of-line blocked behind the ready=60 entry", doneB)
	}
}

func TestThreeLevelHierarchy(t *testing.T) {
	l2 := testCacheCfg("L2", 64, 6, 0)
	llc := testCacheCfg("LLC", 256, 18, 0)
	cfg := config.MemConfig{
		L1: testCacheCfg("L1", 4, 1, 0), L2: &l2, LLC: &llc,
		DRAM: config.DRAMConfig{Model: config.DRAMSimple, MinLatency: 200, BandwidthGBs: 64, EpochCycles: 100},
	}
	h := NewHierarchy(cfg, 2, 2000)
	if len(h.L1s) != 2 || len(h.L2s) != 2 || h.LLC == nil {
		t.Fatal("hierarchy shape wrong")
	}
	// Core 0 warms a line; its hit path stays private. Core 1 misses L1/L2
	// but hits the shared LLC.
	var d0, d1 int64 = -1, -1
	h.AccessAt(0, 0x50000, 8, Read, 0, func(now int64) { d0 = now })
	if run(h, 10000, func() bool { return d0 >= 0 }) < 0 {
		t.Fatal("core 0 access never completed")
	}
	start := d0 + 1
	h.AccessAt(1, 0x50000, 8, Read, start, func(now int64) { d1 = now })
	for now := start; now < start+1000 && d1 < 0; now++ {
		h.Tick(now)
	}
	if d1 < 0 {
		t.Fatal("core 1 access never completed")
	}
	lat0 := d0 - 0
	lat1 := d1 - start
	if lat1 >= lat0 {
		t.Errorf("LLC hit (%d cycles) should beat DRAM (%d cycles)", lat1, lat0)
	}
	if h.LLC.Stats.Hits == 0 {
		t.Error("shared LLC recorded no hit for core 1")
	}
}

// TestEveryRequestCompletesOnce is a property test: random mixes of reads,
// writes, and atomics over random addresses complete exactly once each.
func TestEveryRequestCompletesOnce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := simpleHier(2)
		n := 50 + rng.Intn(200)
		completions := make([]int, n)
		issued := 0
		now := int64(0)
		for issued < n || h.Busy() {
			if issued < n && rng.Intn(3) > 0 {
				i := issued
				kind := []Kind{Read, Write, Atomic}[rng.Intn(3)]
				addr := uint64(rng.Intn(1 << 18))
				h.AccessAt(0, addr, 8, kind, now, func(int64) { completions[i]++ })
				issued++
			}
			h.Tick(now)
			now++
			if now > 5_000_000 {
				return false
			}
		}
		for extra := int64(0); extra < 10; extra++ {
			h.Tick(now + extra)
		}
		for _, c := range completions {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid geometry must panic")
		}
	}()
	NewCache(config.CacheConfig{Name: "bad", SizeKB: 1, LineBytes: 64, Assoc: 7}, nil)
}

func TestHitRate(t *testing.T) {
	s := CacheStats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %g", s.HitRate())
	}
	var empty CacheStats
	if empty.HitRate() != 0 {
		t.Error("empty HitRate should be 0")
	}
}

func coherentHier(directory bool) *Hierarchy {
	cfg := config.MemConfig{
		L1:        testCacheCfg("L1", 4, 1, 0),
		DRAM:      config.DRAMConfig{Model: config.DRAMSimple, MinLatency: 100, BandwidthGBs: 16, EpochCycles: 100},
		Directory: directory,
	}
	return NewHierarchy(cfg, 2, 2000)
}

// drive runs alternating writes from two cores to the same line and returns
// total completion time.
func pingPong(h *Hierarchy, rounds int) int64 {
	now := int64(0)
	for r := 0; r < rounds; r++ {
		core := r % 2
		done := int64(-1)
		h.AccessAt(core, 0x30000, 8, Write, now, func(t int64) { done = t })
		for done < 0 {
			h.Tick(now)
			now++
		}
		now++
	}
	return now
}

func TestDirectoryInvalidatesWriteSharing(t *testing.T) {
	coherent := coherentHier(true)
	incoherent := coherentHier(false)
	tc := pingPong(coherent, 20)
	ti := pingPong(incoherent, 20)
	if tc <= ti {
		t.Errorf("coherent ping-pong (%d cycles) should be slower than incoherent (%d)", tc, ti)
	}
	d := coherent.Dir.Stats
	if d.Invalidations < 18 {
		t.Errorf("invalidations = %d, want ~19 (one per ownership transfer)", d.Invalidations)
	}
	if d.Upgrades == 0 {
		t.Error("no upgrade events recorded")
	}
	// The incoherent hierarchy never misses after the two warm-ups; the
	// coherent one misses on every transfer because the copy was recalled.
	ch := coherent.L1s[0].Stats.Misses + coherent.L1s[1].Stats.Misses
	ih := incoherent.L1s[0].Stats.Misses + incoherent.L1s[1].Stats.Misses
	if ch <= ih {
		t.Errorf("coherent misses (%d) should exceed incoherent (%d)", ch, ih)
	}
}

func TestDirectoryReadSharingIsCheap(t *testing.T) {
	h := coherentHier(true)
	now := int64(0)
	// Both cores read the same line repeatedly: after warm-up, all hits.
	for r := 0; r < 20; r++ {
		done := int64(-1)
		h.AccessAt(r%2, 0x40000, 8, Read, now, func(t int64) { done = t })
		for done < 0 {
			h.Tick(now)
			now++
		}
		now++
	}
	if h.Dir.Stats.Invalidations != 0 {
		t.Errorf("read sharing caused %d invalidations", h.Dir.Stats.Invalidations)
	}
}

func TestDirectoryDirtyFetch(t *testing.T) {
	h := coherentHier(true)
	now := int64(0)
	run := func(core int, kind Kind) {
		done := int64(-1)
		h.AccessAt(core, 0x50000, 8, kind, now, func(t int64) { done = t })
		for done < 0 {
			h.Tick(now)
			now++
		}
		now++
	}
	run(0, Write) // core 0 dirties the line
	run(1, Read)  // core 1 reads it: dirty fetch + flush
	if h.Dir.Stats.DirtyFetches != 1 {
		t.Errorf("DirtyFetches = %d, want 1", h.Dir.Stats.DirtyFetches)
	}
	ds := DRAMStatsOf(h.DRAM)
	if ds.Writebacks == 0 {
		t.Error("recalled dirty line was not flushed to the shared level")
	}
}

func TestDirectoryDisjointLinesUnaffected(t *testing.T) {
	coherent := coherentHier(true)
	now := int64(0)
	for r := 0; r < 20; r++ {
		core := r % 2
		done := int64(-1)
		addr := uint64(0x60000 + core*4096)
		coherent.AccessAt(core, addr, 8, Write, now, func(t int64) { done = t })
		for done < 0 {
			coherent.Tick(now)
			now++
		}
		now++
	}
	if coherent.Dir.Stats.Invalidations != 0 {
		t.Errorf("disjoint working sets caused %d invalidations", coherent.Dir.Stats.Invalidations)
	}
}

// TestLRUWithinAssociativity: accessing up to `assoc` distinct lines of one
// set never evicts any of them (property over random orders).
func TestLRUWithinAssociativity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := simpleHier(0)
		// 4KB/64B/4-way: 16 sets; lines of set 0 are 1KB apart.
		const assoc = 4
		var lines []uint64
		for i := 0; i < assoc; i++ {
			lines = append(lines, uint64(0x100000+i*16*64))
		}
		now := int64(0)
		touch := func(addr uint64) {
			done := int64(-1)
			h.AccessAt(0, addr, 8, Read, now, func(t int64) { done = t })
			for done < 0 {
				h.Tick(now)
				now++
			}
			now++
		}
		// Warm all ways, then 50 random re-touches.
		for _, l := range lines {
			touch(l)
		}
		for i := 0; i < 50; i++ {
			touch(lines[rng.Intn(assoc)])
		}
		return h.L1s[0].Stats.Evictions == 0 && h.L1s[0].Stats.Misses == assoc
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestCacheHitSteadyStateAllocs pins the zero-alloc contract of the cache hit
// path: with the request pool and pending-heap capacity warm, a demand hit
// (Access through the hierarchy, then the ticks that retire it) must not
// allocate.
func TestCacheHitSteadyStateAllocs(t *testing.T) {
	h := NewHierarchy(config.TableIIMem(), 1, 2000)
	now := int64(0)
	step := func() {
		h.Access(0, 1<<16, 8, Read, nil)
		for i := 0; i < 4; i++ {
			h.Tick(now)
			now++
		}
	}
	// Warm up: the first access misses to DRAM, fills the line, and seeds the
	// request pool; keep going until the hierarchy fully drains.
	for i := 0; i < 500; i++ {
		step()
	}
	for h.Busy() {
		h.Tick(now)
		now++
	}
	avg := testing.AllocsPerRun(200, step)
	if avg != 0 {
		t.Errorf("cache hit path allocates %.2f objects/access in steady state, want 0", avg)
	}
}
