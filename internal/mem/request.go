// Package mem implements MosaicSim-Go's memory hierarchy (§V of the paper):
// configurable private/shared timing caches (write-back, write-allocate,
// MSHR coalescing, stream prefetcher) and two DRAM models — SimpleDRAM
// (minimum latency + epoch bandwidth throttling) and a cycle-level banked
// model standing in for DRAMSim2.
//
// The hierarchy is a timing model only: it tracks address tags, never data
// (§V-A: "MosaicSim is a timing simulator and therefore need not hold actual
// data in the caches; the address tags suffice").
package mem

// Kind classifies a memory request.
type Kind uint8

// Request kinds.
const (
	Read Kind = iota
	Write
	Atomic // read-modify-write; fills like a read, dirties like a write
	Prefetch
	Writeback
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Atomic:
		return "atomic"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	}
	return "kind?"
}

// isDemand reports whether the request has a consumer waiting on it.
func (k Kind) isDemand() bool { return k == Read || k == Write || k == Atomic }

// Request is one memory access flowing through the hierarchy. Done (if
// non-nil) is invoked exactly once with the completion cycle.
type Request struct {
	Addr uint64
	Size int
	Kind Kind
	Done func(now int64)
}

// Level is a stage of the hierarchy that accepts requests.
type Level interface {
	// Access enqueues a request arriving at cycle now.
	Access(req *Request, now int64)
	// Tick advances the level to cycle now, completing due requests.
	Tick(now int64)
	// Busy reports whether any request is still in flight at this level.
	Busy() bool
}
