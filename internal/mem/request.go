// Package mem implements MosaicSim-Go's memory hierarchy (§V of the paper):
// configurable private/shared timing caches (write-back, write-allocate,
// MSHR coalescing, stream prefetcher) and two DRAM models — SimpleDRAM
// (minimum latency + epoch bandwidth throttling) and a cycle-level banked
// model standing in for DRAMSim2.
//
// The hierarchy is a timing model only: it tracks address tags, never data
// (§V-A: "MosaicSim is a timing simulator and therefore need not hold actual
// data in the caches; the address tags suffice").
package mem

import "sync"

// Kind classifies a memory request.
type Kind uint8

// Request kinds.
const (
	Read Kind = iota
	Write
	Atomic // read-modify-write; fills like a read, dirties like a write
	Prefetch
	Writeback
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Atomic:
		return "atomic"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	}
	return "kind?"
}

// isDemand reports whether the request has a consumer waiting on it.
func (k Kind) isDemand() bool { return k == Read || k == Write || k == Atomic }

// Request is one memory access flowing through the hierarchy. Done (if
// non-nil) is invoked exactly once with the completion cycle.
type Request struct {
	Addr uint64
	Size int
	Kind Kind
	Done func(now int64)

	// pooled marks requests drawn from the package pool; externally
	// constructed requests are never recycled.
	pooled bool
}

// HorizonNone is the NextEvent result meaning "no self-scheduled event":
// the component's state cannot change until some other component acts on it.
const HorizonNone = int64(1) << 62

// Level is a stage of the hierarchy that accepts requests.
type Level interface {
	// Access enqueues a request arriving at cycle now.
	Access(req *Request, now int64)
	// Tick advances the level to cycle now, completing due requests.
	Tick(now int64)
	// Busy reports whether any request is still in flight at this level.
	Busy() bool
	// NextEvent returns a lower bound on the next cycle at which this level
	// can change observable state on its own (queued work becoming due),
	// or HorizonNone when it has no self-scheduled work. Changes triggered
	// by other components (a new Access) are accounted by their initiator.
	NextEvent(now int64) int64
	// Events returns a monotone counter incremented on every observable
	// state change (request accepted, processed, or completed). Per-cycle
	// stall accounting (e.g. bandwidth throttling) is NOT an event: it is
	// replayed arithmetically over skipped cycles.
	Events() int64
}

// reqPool recycles Requests created inside the hierarchy (demand accesses,
// line fills, writebacks, prefetches). It is a sync.Pool because requests
// cross level boundaries and concurrent simulations share the package.
var reqPool = sync.Pool{New: func() any { return new(Request) }}

// getRequest draws a recyclable request from the pool.
func getRequest() *Request {
	r := reqPool.Get().(*Request)
	r.pooled = true
	return r
}

// putRequest recycles a finished pool-drawn request; externally constructed
// requests (tests, library callers) pass through untouched.
func putRequest(r *Request) {
	if !r.pooled {
		return
	}
	*r = Request{}
	reqPool.Put(r)
}
