// Package pyfe is MosaicSim-Go's Python front end, mirroring the paper's
// "prototype support for Python (via Numba)" (§II): kernels written in a
// typed Python subset compile to the same AST as the C front end and share
// its SSA code generator — the front-end plurality LLVM gives the original.
//
// The subset is what Numba-style nopython kernels look like:
//
//	def kernel(A: 'double*', B: 'double*', C: 'double*', n: 'long'):
//	    for i in range(tile_id(), n, num_tiles()):
//	        C[i] = A[i] + B[i]
//
// Parameters carry type annotations ('double*', 'long', float64, ...).
// Local variables are declared by their first assignment (type inferred, as
// Numba infers a stable type); that first assignment must lexically enclose
// all later uses.
package pyfe

import (
	"fmt"
	"strings"

	"mosaicsim/internal/cc"
	"mosaicsim/internal/ir"
)

// Compile compiles Python-subset source to a verified IR module.
func Compile(src, moduleName string) (*ir.Module, error) {
	file, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	return cc.CompileAST(file, moduleName)
}

// ParseFile parses the Python subset into the shared front-end AST.
func ParseFile(src string) (*cc.File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseFile()
}

// Error is a front-end error with a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("pyfe: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ----- lexer (indentation-aware) -----

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokNewline
	tokIndent
	tokDedent
	tokName
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokPunct
)

type token struct {
	kind tokKind
	text string
	line int
}

var pyKeywords = map[string]bool{
	"def": true, "for": true, "while": true, "if": true, "elif": true,
	"else": true, "return": true, "in": true, "range": true, "break": true,
	"continue": true, "pass": true, "and": true, "or": true, "not": true,
	"True": true, "False": true,
}

var pyPuncts = []string{
	"**", "//", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "->",
	"+", "-", "*", "/", "%", "<", ">", "=", "(", ")", "[", "]", ":", ",", "&", "|", "^", "~",
}

func lex(src string) ([]token, error) {
	var toks []token
	indents := []int{0}
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := ln + 1
		// Strip comments.
		if i := strings.Index(raw, "#"); i >= 0 {
			raw = raw[:i]
		}
		trimmed := strings.TrimRight(raw, " \t")
		body := strings.TrimLeft(trimmed, " \t")
		if body == "" {
			continue // blank lines do not affect indentation
		}
		indent := 0
		for _, ch := range trimmed[:len(trimmed)-len(body)] {
			if ch == '\t' {
				indent += 8
			} else {
				indent++
			}
		}
		cur := indents[len(indents)-1]
		switch {
		case indent > cur:
			indents = append(indents, indent)
			toks = append(toks, token{tokIndent, "", line})
		case indent < cur:
			for len(indents) > 1 && indents[len(indents)-1] > indent {
				indents = indents[:len(indents)-1]
				toks = append(toks, token{tokDedent, "", line})
			}
			if indents[len(indents)-1] != indent {
				return nil, errf(line, "inconsistent indentation")
			}
		}
		if err := lexLine(body, line, &toks); err != nil {
			return nil, err
		}
		toks = append(toks, token{tokNewline, "", line})
	}
	for len(indents) > 1 {
		indents = indents[:len(indents)-1]
		toks = append(toks, token{tokDedent, "", len(lines)})
	}
	toks = append(toks, token{tokEOF, "", len(lines)})
	return toks, nil
}

func lexLine(body string, line int, toks *[]token) error {
	i := 0
	for i < len(body) {
		c := body[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '\'' || c == '"':
			j := strings.IndexByte(body[i+1:], c)
			if j < 0 {
				return errf(line, "unterminated string")
			}
			*toks = append(*toks, token{tokString, body[i+1 : i+1+j], line})
			i += j + 2
		case isNameStart(c):
			j := i
			for j < len(body) && isNameChar(body[j]) {
				j++
			}
			word := body[i:j]
			kind := tokName
			if pyKeywords[word] {
				kind = tokKeyword
			}
			*toks = append(*toks, token{kind, word, line})
			i = j
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(body) && body[i+1] >= '0' && body[i+1] <= '9'):
			j := i
			isFloat := false
			for j < len(body) {
				ch := body[j]
				if ch >= '0' && ch <= '9' {
					j++
				} else if ch == '.' || ch == 'e' || ch == 'E' {
					isFloat = true
					j++
					if j < len(body) && (body[j] == '+' || body[j] == '-') && (body[j-1] == 'e' || body[j-1] == 'E') {
						j++
					}
				} else {
					break
				}
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			*toks = append(*toks, token{kind, body[i:j], line})
			i = j
		default:
			matched := false
			for _, p := range pyPuncts {
				if strings.HasPrefix(body[i:], p) {
					*toks = append(*toks, token{tokPunct, p, line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return errf(line, "unexpected character %q", c)
			}
		}
	}
	return nil
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool { return isNameStart(c) || (c >= '0' && c <= '9') }

// ----- type annotations -----

var pyTypes = map[string]cc.CType{
	"long": {Kind: ir.I64}, "int64": {Kind: ir.I64}, "intp": {Kind: ir.I64},
	"int": {Kind: ir.I32}, "int32": {Kind: ir.I32},
	"double": {Kind: ir.F64}, "float64": {Kind: ir.F64},
	"float": {Kind: ir.F32}, "float32": {Kind: ir.F32},
	"bool": {Kind: ir.I1}, "char": {Kind: ir.I8}, "int8": {Kind: ir.I8},
	"long*": {Kind: ir.I64, Ptr: true}, "int64*": {Kind: ir.I64, Ptr: true},
	"int*": {Kind: ir.I32, Ptr: true}, "int32*": {Kind: ir.I32, Ptr: true},
	"double*": {Kind: ir.F64, Ptr: true}, "float64*": {Kind: ir.F64, Ptr: true},
	"float*": {Kind: ir.F32, Ptr: true}, "float32*": {Kind: ir.F32, Ptr: true},
	"char*": {Kind: ir.I8, Ptr: true}, "int8*": {Kind: ir.I8, Ptr: true},
	// Numba-style array annotations.
	"float64[:]": {Kind: ir.F64, Ptr: true}, "float32[:]": {Kind: ir.F32, Ptr: true},
	"int64[:]": {Kind: ir.I64, Ptr: true}, "int32[:]": {Kind: ir.I32, Ptr: true},
}

func typeFromAnnotation(line int, ann string) (cc.CType, error) {
	if t, ok := pyTypes[ann]; ok {
		return t, nil
	}
	return cc.CType{}, errf(line, "unknown type annotation %q", ann)
}
