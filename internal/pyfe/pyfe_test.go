package pyfe

import (
	"context"
	"math"
	"strings"
	"testing"

	"mosaicsim/internal/cc"
	"mosaicsim/internal/config"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/soc"
)

func runPy(t *testing.T, src string, mem *interp.Memory, args []uint64, tiles int) *interp.Result {
	t.Helper()
	mod, err := Compile(src, "py")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	f := mod.Func("kernel")
	if f == nil {
		t.Fatal("no kernel")
	}
	res, err := interp.Run(f, mem, args, interp.Options{NumTiles: tiles})
	if err != nil {
		t.Fatalf("Run: %v\nIR:\n%s", err, f.String())
	}
	return res
}

func TestPythonVecAdd(t *testing.T) {
	src := `
def kernel(A: 'double*', B: 'double*', C: 'double*', n: 'long'):
    for i in range(n):
        C[i] = A[i] + B[i]
`
	mem := interp.NewMemory(1 << 20)
	const n = 24
	a, b := make([]float64, n), make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(3 * i)
	}
	pa, pb := mem.AllocF64(a), mem.AllocF64(b)
	pc := mem.Alloc(n*8, 64)
	runPy(t, src, mem, []uint64{pa, pb, pc, n}, 1)
	for i := 0; i < n; i++ {
		if got := mem.ReadF64(pc + uint64(i)*8); got != float64(4*i) {
			t.Errorf("C[%d] = %g, want %d", i, got, 4*i)
		}
	}
}

func TestPythonSPMDAndIntrinsics(t *testing.T) {
	src := `
def kernel(out: float64[:], data: float64[:], n: long):
    tid = tile_id()
    nt = num_tiles()
    for i in range(tid, n, nt):
        v = sqrt(data[i])
        atomic_add(out, v)
`
	mem := interp.NewMemory(1 << 20)
	const n = 50
	data := make([]float64, n)
	want := 0.0
	for i := range data {
		data[i] = float64(i * i)
		want += float64(i)
	}
	out := mem.AllocF64([]float64{0})
	pd := mem.AllocF64(data)
	runPy(t, src, mem, []uint64{out, pd, n}, 4)
	if got := mem.ReadF64(out); math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestPythonControlFlow(t *testing.T) {
	src := `
def kernel(out: 'long*', n: 'long'):
    total = 0
    count = 0
    for i in range(n):
        if i % 3 == 0:
            continue
        elif i > 40:
            break
        else:
            total += i
        count += 1
    j = 0
    while j < 5:
        total += 100
        j += 1
    out[0] = total
    out[1] = count
`
	var total, count int64
	for i := int64(0); i < 100; i++ {
		if i%3 == 0 {
			continue
		} else if i > 40 {
			break
		} else {
			total += i
		}
		count++
	}
	total += 500
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(16, 8)
	runPy(t, src, mem, []uint64{out, 100}, 1)
	if got := mem.ReadI64(out); got != total {
		t.Errorf("total = %d, want %d", got, total)
	}
	if got := mem.ReadI64(out + 8); got != count {
		t.Errorf("count = %d, want %d", got, count)
	}
}

func TestPythonNegativeRangeStep(t *testing.T) {
	src := `
def kernel(out: 'long*', n: 'long'):
    s = 0
    for i in range(n, 0, -1):
        s += i
    out[0] = s
`
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(8, 8)
	runPy(t, src, mem, []uint64{out, 10}, 1)
	if got := mem.ReadI64(out); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestPythonHelperFunctions(t *testing.T) {
	// User-defined helpers inline across the shared code generator.
	src := `
def clamp(v: 'long', lo: 'long', hi: 'long') -> 'long':
    if v < lo:
        return lo
    if v > hi:
        return hi
    return v

def kernel(out: 'long*', n: 'long'):
    for i in range(n):
        out[i] = clamp(i - 3, 0, 5)
`
	mem := interp.NewMemory(1 << 20)
	const n = 12
	out := mem.Alloc(n*8, 8)
	runPy(t, src, mem, []uint64{out, n}, 1)
	for i := int64(0); i < n; i++ {
		want := i - 3
		if want < 0 {
			want = 0
		}
		if want > 5 {
			want = 5
		}
		if got := mem.ReadI64(out + uint64(i)*8); got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestPythonBooleansAndLogic(t *testing.T) {
	src := `
def kernel(out: 'long*', a: 'long', b: 'long'):
    p = a > 0 and b > 0
    q = a > 0 or b > 0
    r = not p
    if p:
        out[0] = 1
    else:
        out[0] = 0
    if q:
        out[1] = 1
    if r:
        out[2] = 1
`
	mem := interp.NewMemory(1 << 20)
	out := mem.Alloc(24, 8)
	neg := int64(-2)
	runPy(t, src, mem, []uint64{out, 7, uint64(neg)}, 1)
	if mem.ReadI64(out) != 0 || mem.ReadI64(out+8) != 1 || mem.ReadI64(out+16) != 1 {
		t.Errorf("logic results wrong: %d %d %d", mem.ReadI64(out), mem.ReadI64(out+8), mem.ReadI64(out+16))
	}
}

func TestPythonKernelSimulates(t *testing.T) {
	// The Python front end feeds the same DDG/trace/simulation pipeline.
	src := `
def kernel(A: 'double*', B: 'double*', n: 'long'):
    for i in range(n):
        B[i] = A[i] * 2.0 + 1.0
`
	mod, err := Compile(src, "py")
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Func("kernel")
	mem := interp.NewMemory(1 << 22)
	const n = 512
	pa := mem.AllocF64(make([]float64, n))
	pb := mem.Alloc(n*8, 64)
	res, err := interp.Run(f, mem, []uint64{pa, pb, n}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := soc.NewSPMD(&config.SystemConfig{
		Name:  "py",
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: 1}},
		Mem:   config.TableIIMem(),
	}, ddg.Build(f), res.Trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if sys.Result().Instrs != res.Trace.TotalDynInstrs() {
		t.Error("simulated instruction count does not match trace")
	}
}

// TestPythonAndCFrontEndsAgree compiles the same kernel through both front
// ends and checks they compute identical results (shared semantics).
func TestPythonAndCFrontEndsAgree(t *testing.T) {
	py := `
def kernel(A: 'long*', out: 'long*', n: 'long'):
    acc = 0
    for i in range(n):
        if A[i] % 2 == 0:
            acc += A[i] * 3
        else:
            acc -= A[i]
    out[0] = acc
`
	cs := `
void kernel(long* A, long* out, long n) {
  long acc = 0;
  for (long i = 0; i < n; i++) {
    if (A[i] % 2 == 0) {
      acc += A[i] * 3;
    } else {
      acc -= A[i];
    }
  }
  out[0] = acc;
}
`
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = int64(i*7 - 30)
	}
	pyMod, err := Compile(py, "py")
	if err != nil {
		t.Fatal(err)
	}
	cMod, err := cc.Compile(cs, "c")
	if err != nil {
		t.Fatal(err)
	}
	results := map[string]int64{}
	for name, mod := range map[string]*ir.Module{"py": pyMod, "c": cMod} {
		mem := interp.NewMemory(1 << 20)
		pa := mem.AllocI64(vals)
		out := mem.Alloc(8, 8)
		if _, err := interp.Run(mod.Func("kernel"), mem, []uint64{pa, out, uint64(len(vals))}, interp.Options{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = mem.ReadI64(out)
	}
	if results["py"] != results["c"] {
		t.Errorf("front ends disagree: python %d vs c %d", results["py"], results["c"])
	}
}

func TestPythonErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"bad indent", "def kernel(n: 'long'):\n  x = 1\n    y = 2\n", "indent"},
		{"unknown annotation", "def kernel(n: 'quux'):\n    pass\n", "annotation"},
		{"undeclared aug-assign", "def kernel(n: 'long'):\n    x += 1\n", "undeclared"},
		{"range arity", "def kernel(n: 'long'):\n    for i in range():\n        pass\n", "range"},
		{"unterminated string", "def kernel(n: 'oops):\n    pass\n", "unterminated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := strings.ReplaceAll(tc.src, "\\n", "\n")
			_, err := Compile(src, "t")
			if err == nil {
				t.Fatal("expected an error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
