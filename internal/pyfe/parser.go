package pyfe

import (
	"strconv"

	"mosaicsim/internal/cc"
	"mosaicsim/internal/ir"
)

type parser struct {
	toks []token
	pos  int
	// declared tracks names per lexical block so first assignment becomes an
	// inferred declaration (Numba's stable-type rule: the first assignment
	// must lexically enclose all later uses).
	declared []map[string]bool
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	t := p.cur()
	if (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(text string) (token, error) {
	if !p.accept(text) {
		return token{}, errf(p.cur().line, "expected %q, found %q", text, p.describe())
	}
	return p.toks[p.pos-1], nil
}

func (p *parser) describe() string {
	t := p.cur()
	switch t.kind {
	case tokNewline:
		return "end of line"
	case tokIndent:
		return "indent"
	case tokDedent:
		return "dedent"
	case tokEOF:
		return "end of file"
	}
	return t.text
}

func (p *parser) expectKind(k tokKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, errf(p.cur().line, "expected %s, found %q", what, p.describe())
	}
	return p.advance(), nil
}

func (p *parser) pushScope() { p.declared = append(p.declared, map[string]bool{}) }
func (p *parser) popScope()  { p.declared = p.declared[:len(p.declared)-1] }
func (p *parser) isDeclared(name string) bool {
	for i := len(p.declared) - 1; i >= 0; i-- {
		if p.declared[i][name] {
			return true
		}
	}
	return false
}
func (p *parser) declare(name string) { p.declared[len(p.declared)-1][name] = true }

func (p *parser) parseFile() (*cc.File, error) {
	f := &cc.File{}
	for {
		for p.cur().kind == tokNewline {
			p.advance()
		}
		if p.cur().kind == tokEOF {
			return f, nil
		}
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fn)
	}
}

// parseAnnotation reads a type annotation: a string literal ('double*') or a
// bare name optionally followed by '*' or '[:]'.
func (p *parser) parseAnnotation() (cc.CType, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.advance()
		return typeFromAnnotation(t.line, t.text)
	case tokName, tokKeyword:
		p.advance()
		name := t.text
		if p.accept("*") {
			name += "*"
		} else if p.accept("[") {
			if _, err := p.expect(":"); err != nil {
				return cc.CType{}, err
			}
			if _, err := p.expect("]"); err != nil {
				return cc.CType{}, err
			}
			name += "[:]"
		}
		return typeFromAnnotation(t.line, name)
	default:
		return cc.CType{}, errf(t.line, "expected a type annotation, found %q", p.describe())
	}
}

func (p *parser) parseFunc() (*cc.FuncDecl, error) {
	def, err := p.expect("def")
	if err != nil {
		return nil, err
	}
	name, err := p.expectKind(tokName, "function name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	fn := &cc.FuncDecl{Name: name.text, Ret: cc.CType{Kind: ir.Void}, Line: def.line}
	p.pushScope()
	defer p.popScope()
	for !p.accept(")") {
		if len(fn.Params) > 0 {
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
		}
		pn, err := p.expectKind(tokName, "parameter name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(":"); err != nil {
			return nil, err
		}
		ty, err := p.parseAnnotation()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, cc.ParamDecl{Name: pn.text, Type: ty})
		p.declare(pn.text)
	}
	if p.accept("->") {
		ty, err := p.parseAnnotation()
		if err != nil {
			return nil, err
		}
		fn.Ret = ty
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// parseBlock parses ':' NEWLINE INDENT stmt+ DEDENT.
func (p *parser) parseBlock() (*cc.BlockStmt, error) {
	colon, err := p.expect(":")
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKind(tokNewline, "newline"); err != nil {
		return nil, err
	}
	if _, err := p.expectKind(tokIndent, "indented block"); err != nil {
		return nil, err
	}
	b := &cc.BlockStmt{Line: colon.line}
	p.pushScope()
	defer p.popScope()
	for p.cur().kind != tokDedent && p.cur().kind != tokEOF {
		if p.cur().kind == tokNewline {
			p.advance()
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	if p.cur().kind == tokDedent {
		p.advance()
	}
	return b, nil
}

func (p *parser) endOfStmt() error {
	if p.cur().kind == tokNewline {
		p.advance()
		return nil
	}
	if p.cur().kind == tokEOF || p.cur().kind == tokDedent {
		return nil
	}
	return errf(p.cur().line, "unexpected %q at end of statement", p.describe())
}

func (p *parser) parseStmt() (cc.Stmt, error) {
	t := p.cur()
	switch {
	case t.text == "pass" && t.kind == tokKeyword:
		p.advance()
		return nil, p.endOfStmt()
	case t.text == "break" && t.kind == tokKeyword:
		p.advance()
		return &cc.BreakStmt{Line: t.line}, p.endOfStmt()
	case t.text == "continue" && t.kind == tokKeyword:
		p.advance()
		return &cc.ContinueStmt{Line: t.line}, p.endOfStmt()
	case t.text == "return" && t.kind == tokKeyword:
		p.advance()
		st := &cc.ReturnStmt{Line: t.line}
		if p.cur().kind != tokNewline && p.cur().kind != tokDedent && p.cur().kind != tokEOF {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Value = e
		}
		return st, p.endOfStmt()
	case t.text == "if" && t.kind == tokKeyword:
		return p.parseIf()
	case t.text == "while" && t.kind == tokKeyword:
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &cc.WhileStmt{Cond: cond, Body: body, Line: t.line}, nil
	case t.text == "for" && t.kind == tokKeyword:
		return p.parseFor()
	default:
		return p.parseSimple()
	}
}

func (p *parser) parseIf() (cc.Stmt, error) {
	t := p.advance() // 'if' or 'elif'
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &cc.IfStmt{Cond: cond, Then: then, Line: t.line}
	switch {
	case p.cur().text == "elif" && p.cur().kind == tokKeyword:
		els, err := p.parseIf()
		if err != nil {
			return nil, err
		}
		st.Else = els
	case p.accept("else"):
		els, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

// parseFor desugars `for i in range(a, b, c):` into a C-style for loop.
func (p *parser) parseFor() (cc.Stmt, error) {
	t := p.advance() // 'for'
	name, err := p.expectKind(tokName, "loop variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("in"); err != nil {
		return nil, err
	}
	if _, err := p.expect("range"); err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var args []cc.Expr
	for !p.accept(")") {
		if len(args) > 0 {
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	var start, stop, step cc.Expr
	switch len(args) {
	case 1:
		start, stop, step = &cc.IntLit{Value: 0, Line: t.line}, args[0], &cc.IntLit{Value: 1, Line: t.line}
	case 2:
		start, stop, step = args[0], args[1], &cc.IntLit{Value: 1, Line: t.line}
	case 3:
		start, stop, step = args[0], args[1], args[2]
	default:
		return nil, errf(t.line, "range() takes 1-3 arguments, got %d", len(args))
	}
	// Negative constant steps count down (the literal arrives either folded
	// or as unary minus).
	cmp := "<"
	if lit, ok := step.(*cc.IntLit); ok && lit.Value < 0 {
		cmp = ">"
	} else if u, ok := step.(*cc.UnaryExpr); ok && u.Op == "-" {
		if lit, ok := u.X.(*cc.IntLit); ok && lit.Value > 0 {
			cmp = ">"
		}
	}
	loopVar := &cc.Ident{Name: name.text, Line: name.line}
	st := &cc.ForStmt{
		Init: &cc.DeclStmt{Name: name.text, Type: cc.CType{Kind: ir.I64}, Init: start, Line: name.line},
		Cond: &cc.BinaryExpr{Op: cmp, L: loopVar, R: stop, Line: t.line},
		Post: &cc.AssignStmt{Target: loopVar, Op: "+=", Value: step, Line: t.line},
		Line: t.line,
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// parseSimple parses assignments and expression statements. The first
// assignment to an undeclared name becomes a type-inferred declaration.
func (p *parser) parseSimple() (cc.Stmt, error) {
	line := p.cur().line
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch op := p.cur().text; op {
	case "=", "+=", "-=", "*=", "/=", "%=":
		p.advance()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if id, ok := lhs.(*cc.Ident); ok && op == "=" && !p.isDeclared(id.Name) {
			p.declare(id.Name)
			return &cc.DeclStmt{Name: id.Name, Init: rhs, Line: line}, p.endOfStmt()
		}
		return &cc.AssignStmt{Target: lhs, Op: op, Value: rhs, Line: line}, p.endOfStmt()
	default:
		return &cc.ExprStmt{X: lhs, Line: line}, p.endOfStmt()
	}
}

// ----- expressions -----

var pyBinPrec = map[string]int{
	"or": 1, "and": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"|": 4, "^": 5, "&": 6,
	"+": 7, "-": 7,
	"*": 8, "/": 8, "//": 8, "%": 8,
}

// pyToCCOp maps Python operator spellings onto the shared AST's C spellings.
var pyToCCOp = map[string]string{"or": "||", "and": "&&", "//": "/"}

func (p *parser) parseExpr() (cc.Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (cc.Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct && t.kind != tokKeyword {
			return lhs, nil
		}
		prec, ok := pyBinPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		op := t.text
		if mapped, ok := pyToCCOp[op]; ok {
			op = mapped
		}
		lhs = &cc.BinaryExpr{Op: op, L: lhs, R: rhs, Line: t.line}
	}
}

func (p *parser) parseUnary() (cc.Expr, error) {
	t := p.cur()
	switch t.text {
	case "-", "~":
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &cc.UnaryExpr{Op: t.text, X: x, Line: t.line}, nil
	case "not":
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &cc.UnaryExpr{Op: "!", X: x, Line: t.line}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (cc.Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().text {
		case "[":
			line := p.advance().line
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &cc.IndexExpr{Base: x, Idx: idx, Line: line}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (cc.Expr, error) {
	t := p.cur()
	switch {
	case t.text == "(":
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 0, 64)
		if err != nil {
			return nil, errf(t.line, "bad integer literal %q", t.text)
		}
		return &cc.IntLit{Value: v, Line: t.line}, nil
	case t.kind == tokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errf(t.line, "bad float literal %q", t.text)
		}
		return &cc.FloatLit{Value: v, Line: t.line}, nil
	case t.text == "True" || t.text == "False":
		p.advance()
		return &cc.BoolLit{Value: t.text == "True", Line: t.line}, nil
	case t.kind == tokName:
		p.advance()
		if p.accept("(") {
			call := &cc.CallExpr{Name: t.text, Line: t.line}
			for !p.accept(")") {
				if len(call.Args) > 0 {
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			return call, nil
		}
		return &cc.Ident{Name: t.text, Line: t.line}, nil
	default:
		return nil, errf(t.line, "unexpected %q", p.describe())
	}
}
