package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean(2,8) = %g, want 4", g)
	}
	if g := Geomean([]float64{1.099}); math.Abs(g-1.099) > 1e-12 {
		t.Errorf("Geomean single = %g", g)
	}
	if !math.IsNaN(Geomean(nil)) {
		t.Error("Geomean(nil) should be NaN")
	}
	if !math.IsNaN(Geomean([]float64{1, -1})) {
		t.Error("Geomean with negatives should be NaN")
	}
}

// Property: geomean is scale-equivariant: gm(k*x) = k*gm(x).
func TestGeomeanScaleProperty(t *testing.T) {
	f := func(raw []float64, k float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-6 && x < 1e6 && !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		k = math.Abs(k)
		if k < 1e-3 || k > 1e3 || math.IsNaN(k) {
			k = 2
		}
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = k * x
		}
		a, b := Geomean(scaled), k*Geomean(xs)
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMeanAndNormalize(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %g", m)
	}
	n := Normalize([]float64{10, 20}, 10)
	if n[0] != 1 || n[1] != 2 {
		t.Errorf("Normalize = %v", n)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig. 5", "bench", "accuracy")
	tb.Row("bfs", 0.97)
	tb.Row("tpacf", 3.29)
	out := tb.String()
	for _, want := range []string{"== Fig. 5 ==", "bench", "accuracy", "bfs", "0.97", "3.29", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.Row(1234567.0)
	tb.Row(0.0000001)
	tb.Row(math.NaN())
	tb.Row(0.0)
	out := tb.String()
	if !strings.Contains(out, "e+06") || !strings.Contains(out, "e-07") {
		t.Errorf("scientific formatting missing:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("NaN should render as '-':\n%s", out)
	}
}

func TestPercentile(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty input should be NaN")
	}
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
	if got := Percentile(xs, 50); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("p50 = %v, want 2.5", got)
	}
	if got := Percentile([]float64{1, 2, 3, 4, 5}, 95); math.Abs(got-4.8) > 1e-12 {
		t.Errorf("p95 = %v, want 4.8", got)
	}
	if xs[0] != 4 {
		t.Error("input slice was mutated")
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("singleton p50 = %v, want 7", got)
	}
}
