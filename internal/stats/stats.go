// Package stats provides the small numeric and reporting helpers the
// experiment harness uses: geometric means, normalization, and fixed-width
// table rendering for regenerated paper tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs (NaN for empty or non-positive
// input).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SkipFraction returns the share of simulated cycles the Interleaver elided
// via event-horizon cycle skipping: skipped / (stepped + skipped). Zero when
// nothing ran.
func SkipFraction(stepped, skipped int64) float64 {
	total := stepped + skipped
	if total <= 0 {
		return 0
	}
	return float64(skipped) / float64(total)
}

// Percentile returns the p-th percentile (p in [0,100]) of xs by linear
// interpolation between closest ranks, the same estimate `numpy.percentile`
// computes. xs need not be sorted; it is not modified. NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Normalize divides each element by base, e.g. to express speedups relative
// to a baseline system.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Table renders rows as an aligned fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Row appends a row; cells format with %v, floats with 4 significant digits.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && (math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		sb.WriteString(strings.Repeat("-", total+2*(cols-1)) + "\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Closest returns the candidate nearest to name by edit distance, or "" when
// nothing is close enough to be a plausible typo (distance > half the name's
// length). Drivers use it for did-you-mean suggestions on unknown workload
// or experiment names.
func Closest(name string, candidates []string) string {
	best, bestDist := "", len(name)/2+1
	for _, c := range candidates {
		if d := editDistance(name, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}
