package core

import (
	"fmt"

	"mosaicsim/internal/config"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/mem"
	"mosaicsim/internal/trace"
)

// MemPort is the tile's view of the memory hierarchy (its private cache
// queue, §V).
type MemPort interface {
	Access(addr uint64, size int, kind mem.Kind, now int64, done func(int64))
}

// Fabric is the tile's view of the Interleaver's inter-tile message transport
// (§II-C). Sends enqueue into bounded buffers; recvs consume matured
// messages. Barriers synchronize SPMD tiles.
type Fabric interface {
	// TrySend enqueues a message from src to dst at cycle now; false when
	// the communication buffer is full (the send retries).
	TrySend(src, dst int, now int64) bool
	// TryRecv consumes a message from src matured at or before now; false
	// when none is available yet.
	TryRecv(dst, src int, now int64) bool
	// TrySendFuture reserves a buffer slot whose arrival cycle is supplied
	// later (the DeSC terminal-load buffer: a send fused with a pending
	// load matures when the load's data returns).
	TrySendFuture(src, dst int) (setArrival func(int64), ok bool)
	// BarrierArrive registers tile's arrival at its next barrier and
	// returns that barrier's sequence number.
	BarrierArrive(tile int) int64
	// BarrierReleased reports whether every tile has arrived at barrier seq.
	BarrierReleased(seq int64) bool
}

// AccelInvoker dispatches accelerator invocations to their performance
// models (§IV-A): done is called at the invocation's completion cycle.
type AccelInvoker interface {
	Invoke(name string, params []int64, now int64, done func(int64)) error
}

// Stats aggregates one tile's simulation results.
type Stats struct {
	Cycles     int64
	Instrs     int64
	Loads      int64
	Stores     int64
	Atomics    int64
	Sends      int64
	Recvs      int64
	AccCalls   int64
	Mispredict int64
	// Stall counters (cycle-grained causes sampled at issue).
	MAOStalls    int64 // memory ops delayed by MAO ordering or capacity
	FUStalls     int64 // issue attempts blocked on functional units
	WindowStalls int64 // issue attempts blocked outside the window
	CommStalls   int64 // send/recv retries
	EnergyPJ     float64
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

type nodeState uint8

const (
	stateWaiting nodeState = iota
	stateReady
	stateIssued
	stateCompleted
)

// dynNode is one dynamic instruction instance (one node of a DBB).
type dynNode struct {
	in    *ir.Instr
	class config.InstrClass
	seq   int64 // global program order
	state nodeState

	parentsLeft int
	dependents  []*dynNode

	dbb *dynDBB

	// memory operands from the trace
	addr    uint64
	memSize int
	memKind mem.Kind

	// communication partner from the trace
	partner int

	// barrierSeq is the fabric barrier index this node waits on; valid once
	// barrierArrived is set.
	barrierSeq     int64
	barrierArrived bool

	// maoPos is 1 + the node's absolute position in the MAO stream (0 = not
	// a memory op); complete uses it to clear the node's MAO slot so pooled
	// nodes are never scanned through stale pointers.
	maoPos int64
	// doneAdj is added to the completion cycle delivered through doneCB
	// (atomic read-modify-write extra latency).
	doneAdj int64
	// doneCB is the node's completion callback, allocated once per pooled
	// node and reused across recycles (it captures only the stable node and
	// core pointers).
	doneCB func(int64)

	// free marks instructions fused into neighbors on the reference ISA
	// (e.g. gep folded into a load's addressing mode): they retire without
	// consuming issue width, functional units, or latency.
	free bool

	// fusedLoad is the pending load whose data this send forwards (DeSC
	// terminal load buffer); nil for ordinary sends. fusedSeq is the load's
	// seq at bind time: if the pointed-at node was recycled for a younger
	// instruction the seqs no longer match and the load is treated as
	// completed (which it was, or it could not have been recycled).
	fusedLoad *dynNode
	fusedSeq  int64
	// parkable marks a recv whose value only feeds a store (DeSC store
	// value buffer): it may leave the in-order pipe and drain when the
	// message arrives.
	parkable bool
	// doneAt is the completion cycle, valid once state == stateCompleted.
	doneAt int64
	// onComplete callbacks run at completion (used by fused sends).
	onComplete []func(int64)

	// accelerator invocation from the trace
	accCall *trace.AccCall
}

// dynDBB is a dynamic basic block: one launched instance of a static block.
type dynDBB struct {
	blockID    int
	remaining  int // uncompleted nodes (live-DBB accounting)
	term       *dynNode
	termDone   bool // terminator completed (read instead of term.state, which may be recycled)
	mispredict bool // launch of the successor pays the penalty
}

// Core is one core tile. It consumes a TileTrace and the function's DDG and
// produces cycle/energy estimates.
type Core struct {
	ID    int
	Cfg   config.CoreConfig
	Stats Stats

	graph  *ddg.Graph
	tt     *trace.TileTrace
	memp   MemPort
	fabric Fabric
	accel  AccelInvoker

	// trace cursors
	bbCursor   int
	memCursor  int
	accCursor  int
	commCursor int

	lastDyn []*dynNode // latest dynamic instance per static instruction

	// sliding instruction window (ROB): unretired nodes in program order.
	window     []*dynNode
	windowHead int // index of the oldest unretired node in window

	liveDBB  []int   // static block ID -> live DBB count
	lastDBB  *dynDBB // most recently launched DBB
	launchAt int64   // earliest cycle the next DBB may launch (after penalty)

	ready readyHeap
	// issuePtr is the in-order issue cursor into window (InOrder mode).
	issuePtr int
	// pendingDrain holds the partner tiles of parked recvs (DeSC store
	// value buffer): the pipeline has moved on, the messages are consumed
	// from the fabric as they arrive.
	pendingDrain []int

	// MAO (LSQ): memory nodes in program order, pruned as they complete.
	mao         []*dynNode
	maoHead     int
	maoBase     int64 // absolute MAO position of mao[0] (post-compaction offset)
	maoTotal    int64 // absolute MAO positions handed out
	maoInUse    int   // issued-but-incomplete memory ops (capacity check)
	outstanding int   // issued-but-incomplete nodes of any kind

	fuBusy [config.NumClasses]int

	completions completionHeap
	seqCounter  int64
	finished    bool
	finishCycle int64

	// clock scaling: fixed latencies in core cycles are converted to global
	// Interleaver cycles as lat * clockNum / clockDen (§II "tiles may run at
	// different clock speeds").
	clockNum, clockDen int64

	// freeMask marks static instructions as fused idioms (see SetFreeInstrs).
	freeMask []bool

	// progress counts state-changing events (launches, issues, completions,
	// drains, barrier arrivals). The Interleaver compares successive readings
	// to detect frozen tiles and engage event-horizon cycle skipping.
	progress uint64

	// syncOps counts launched-but-incomplete nodes that touch shared
	// synchronization state (barriers, accelerator invocations); blockSync
	// marks the static blocks containing such ops. Together they implement
	// MaySync, the parallel stepper's ordering test.
	syncOps   int
	blockSync []bool

	// Hot-path pools: dynamic nodes and DBBs are recycled at retire instead
	// of allocated per launch, and launchOne's per-launch node buffer is a
	// reused scratch slice.
	freeNodes []*dynNode
	freeDBBs  []*dynDBB
	scratch   []*dynNode
	deferred  []*dynNode

	// gshare dynamic-predictor state (config.BranchDynamic).
	bpHistory  uint32
	bpCounters []uint8
}

const (
	gshareBits = 12
	gshareMask = (1 << gshareBits) - 1
)

// New builds a core tile for one traced kernel execution.
func New(id int, cfg config.CoreConfig, g *ddg.Graph, tt *trace.TileTrace, memp MemPort, fabric Fabric, accel AccelInvoker) *Core {
	c := &Core{
		ID:       id,
		Cfg:      cfg,
		graph:    g,
		tt:       tt,
		memp:     memp,
		fabric:   fabric,
		accel:    accel,
		lastDyn:  make([]*dynNode, g.Fn.NumInstrs()),
		liveDBB:  make([]int, len(g.Blocks)),
		clockNum: 1,
		clockDen: 1,
	}
	// Preallocate the hot-path backing arrays from the trace length so the
	// steady state never grows them. total is the tile's dynamic instruction
	// count; small traces get exactly-sized arrays.
	total := 0
	for _, b := range tt.BBPath {
		total += len(g.Blocks[b].Nodes)
	}
	c.blockSync = make([]bool, len(g.Blocks))
	for b, bg := range g.Blocks {
		for _, sn := range bg.Nodes {
			if sn.Instr.Op == ir.OpCall &&
				(sn.Instr.Callee == "barrier" || (len(sn.Instr.Callee) > 4 && sn.Instr.Callee[:4] == "acc_")) {
				c.blockSync[b] = true
				break
			}
		}
	}
	wcap := min(total, 2*cfg.WindowSize+64)
	c.window = make([]*dynNode, 0, wcap)
	c.freeNodes = make([]*dynNode, 0, wcap)
	c.ready = make(readyHeap, 0, min(total, cfg.WindowSize+8))
	c.completions = make(completionHeap, 0, min(total, cfg.WindowSize+8))
	c.mao = make([]*dynNode, 0, min(total, 2*cfg.LSQSize+64))
	return c
}

// allocNode pops a recycled dynamic node (or allocates a fresh one),
// resetting every field while keeping the dependents/onComplete backing
// arrays and the node's completion callback.
func (c *Core) allocNode() *dynNode {
	if k := len(c.freeNodes); k > 0 {
		n := c.freeNodes[k-1]
		c.freeNodes = c.freeNodes[:k-1]
		deps, cbs, done := n.dependents[:0], n.onComplete[:0], n.doneCB
		*n = dynNode{dependents: deps, onComplete: cbs, doneCB: done}
		return n
	}
	return &dynNode{}
}

// recycleNode returns a retired node to the pool. Dangling references are
// severed (lastDyn) or guarded by seq checks (fusedLoad) / nil MAO slots.
func (c *Core) recycleNode(n *dynNode) {
	if idx := n.in.Idx; idx < len(c.lastDyn) && c.lastDyn[idx] == n {
		c.lastDyn[idx] = nil
	}
	c.freeNodes = append(c.freeNodes, n)
}

func (c *Core) allocDBB(bid, nodes int) *dynDBB {
	if k := len(c.freeDBBs); k > 0 {
		d := c.freeDBBs[k-1]
		c.freeDBBs = c.freeDBBs[:k-1]
		*d = dynDBB{blockID: bid, remaining: nodes}
		return d
	}
	return &dynDBB{blockID: bid, remaining: nodes}
}

// SetFreeInstrs marks static instructions (by layout index) as fused idioms
// that cost no issue slot, functional unit, or latency. The hardware
// reference model uses this to mimic an ISA where IR idioms (gep+load,
// phi copies, casts) map onto single machine instructions (§VI-A).
func (c *Core) SetFreeInstrs(mask []bool) { c.freeMask = mask }

// SetClockScale configures conversion from core cycles to global Interleaver
// cycles: one core cycle spans num/den global cycles.
func (c *Core) SetClockScale(num, den int64) {
	if num <= 0 || den <= 0 {
		return
	}
	c.clockNum, c.clockDen = num, den
}

// scaleLat converts a core-cycle latency to global cycles (rounded up).
func (c *Core) scaleLat(lat int64) int64 {
	if c.clockNum == c.clockDen {
		return lat
	}
	return (lat*c.clockNum + c.clockDen - 1) / c.clockDen
}

// Done reports whether the tile has retired its whole trace.
func (c *Core) Done() bool { return c.finished }

// FinishCycle returns the tile-local cycle at which the trace retired.
func (c *Core) FinishCycle() int64 { return c.finishCycle }

// readyHeap orders issue-ready nodes by program order.
type readyHeap []*dynNode

func (h readyHeap) Len() int { return len(h) }

// push and pop are typed equivalents of container/heap's Push/Pop with the
// identical sift sequence, minus the interface boxing that allocated on every
// call in the simulator's hottest loop.
func (h *readyHeap) push(n *dynNode) {
	a := append(*h, n)
	*h = a
	j := len(a) - 1
	for j > 0 {
		i := (j - 1) / 2
		if a[j].seq >= a[i].seq {
			break
		}
		a[i], a[j] = a[j], a[i]
		j = i
	}
}

func (h *readyHeap) pop() *dynNode {
	a := *h
	n := len(a) - 1
	a[0], a[n] = a[n], a[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && a[j2].seq < a[j].seq {
			j = j2
		}
		if a[j].seq >= a[i].seq {
			break
		}
		a[i], a[j] = a[j], a[i]
		i = j
	}
	v := a[n]
	a[n] = nil
	*h = a[:n]
	return v
}

type completion struct {
	at   int64
	node *dynNode
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }

// push and pop mirror container/heap's algorithm exactly (same compares, same
// swaps, so entries with equal due times pop in the same order) but are typed:
// the old heap.Interface path boxed a completion struct per Push and per Pop,
// which was the single largest allocation source in the simulator.
func (h *completionHeap) push(v completion) {
	a := append(*h, v)
	*h = a
	j := len(a) - 1
	for j > 0 {
		i := (j - 1) / 2
		if a[j].at >= a[i].at {
			break
		}
		a[i], a[j] = a[j], a[i]
		j = i
	}
}

func (h *completionHeap) pop() completion {
	a := *h
	n := len(a) - 1
	a[0], a[n] = a[n], a[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && a[j2].at < a[j].at {
			j = j2
		}
		if a[j].at >= a[i].at {
			break
		}
		a[i], a[j] = a[j], a[i]
		i = j
	}
	v := a[n]
	a[n] = completion{}
	*h = a[:n]
	return v
}

// Step advances the tile by one of its own clock cycles. It returns true
// while the tile still has work.
func (c *Core) Step(now int64) bool {
	if c.finished {
		return false
	}
	c.processCompletions(now)
	// Drain the store-value buffer: consume matured messages for recvs that
	// already left the pipeline.
	for len(c.pendingDrain) > 0 && c.fabric.TryRecv(c.ID, c.pendingDrain[0], now) {
		c.pendingDrain = c.pendingDrain[1:]
		c.progress++
	}
	c.launchDBBs(now)
	c.issue(now)
	c.retire()
	if c.bbCursor >= len(c.tt.BBPath) && c.windowHead >= len(c.window) && c.completions.Len() == 0 && c.outstanding == 0 && len(c.pendingDrain) == 0 {
		c.finished = true
		c.finishCycle = now
		c.Stats.Cycles = now
		c.progress++
		return false
	}
	c.Stats.Cycles = now
	return true
}

// processCompletions retires timing events due at or before now.
func (c *Core) processCompletions(now int64) {
	for c.completions.Len() > 0 && c.completions[0].at <= now {
		ev := c.completions.pop()
		c.complete(ev.node, now)
	}
}

// complete marks a node finished, frees its resources, and wakes dependents
// (rule 2, §II-A).
func (c *Core) complete(n *dynNode, now int64) {
	if n.state == stateCompleted {
		return
	}
	n.state = stateCompleted
	n.doneAt = now
	c.outstanding--
	c.progress++
	if n.accCall != nil || (n.in.Op == ir.OpCall && n.in.Callee == "barrier") {
		c.syncOps--
	}
	for _, cb := range n.onComplete {
		cb(now)
	}
	n.onComplete = n.onComplete[:0]
	if !n.free {
		if lim := c.Cfg.FULimit(n.class); lim > 0 {
			c.fuBusy[n.class]--
		}
		if n.class == config.ClassMem {
			c.maoInUse--
		}
	}
	// Clear the node's MAO slot so ordering scans never chase a pointer into
	// a recycled node (slots are pruned/compacted lazily by tryIssueMem).
	if n.maoPos != 0 {
		if i := n.maoPos - 1 - c.maoBase; i >= 0 && i < int64(len(c.mao)) && c.mao[i] == n {
			c.mao[i] = nil
		}
	}
	c.Stats.Instrs++
	c.Stats.EnergyPJ += config.EnergyPerClassPJ[n.class]
	// A mispredicted terminator releases the next launch only after the
	// misprediction penalty (§III-C).
	if n == n.dbb.term {
		n.dbb.termDone = true
		if n.dbb.mispredict {
			c.launchAt = now + c.scaleLat(c.Cfg.MispredictPenalty)
		}
	}
	n.dbb.remaining--
	if n.dbb.remaining == 0 {
		c.liveDBB[n.dbb.blockID]--
		if n.dbb != c.lastDBB {
			c.freeDBBs = append(c.freeDBBs, n.dbb)
		}
	}
	for _, d := range n.dependents {
		d.parentsLeft--
		if d.parentsLeft == 0 && d.state == stateWaiting {
			d.state = stateReady
			if !c.Cfg.InOrder {
				c.ready.push(d)
			}
		}
	}
}

// memDone is the callback given to the memory hierarchy. The closure is
// allocated once per pooled node and reused across recycles: it captures only
// the stable node and core pointers and reads the per-incarnation latency
// adjustment (doneAdj) at fire time.
func (c *Core) memDone(n *dynNode) func(int64) {
	if n.doneCB == nil {
		n.doneCB = func(at int64) {
			c.completions.push(completion{at: at + n.doneAdj, node: n})
		}
	}
	return n.doneCB
}

// retire slides the instruction window (ROB) forward over completed nodes
// (§III-A "ROB").
func (c *Core) retire() {
	for c.windowHead < len(c.window) && c.window[c.windowHead].state == stateCompleted {
		c.recycleNode(c.window[c.windowHead])
		c.window[c.windowHead] = nil
		c.windowHead++
	}
	// Periodically compact the retired prefix in place (no fresh backing
	// array: the window reuses its allocation for the whole run).
	if c.windowHead > 4096 && c.windowHead*2 > len(c.window) {
		k := copy(c.window, c.window[c.windowHead:])
		for i := k; i < len(c.window); i++ {
			c.window[i] = nil
		}
		c.window = c.window[:k]
		c.issuePtr -= c.windowHead
		if c.issuePtr < 0 {
			c.issuePtr = 0
		}
		c.windowHead = 0
	}
}

func (c *Core) unretired() int { return len(c.window) - c.windowHead }

// windowBaseSeq returns the seq of the oldest unretired node.
func (c *Core) windowBaseSeq() int64 {
	if c.windowHead < len(c.window) {
		return c.window[c.windowHead].seq
	}
	return c.seqCounter
}

// mispredictTarget implements the static predictor (§III-C): backward
// branches (loops) predicted taken toward the lower-numbered block, forward
// branches predicted fall-through (the lexically next block).
func staticPrediction(term *ir.Instr, curBlock int) int {
	if term.Op != ir.OpCondBr {
		if len(term.Targets) == 1 {
			return term.Targets[0].ID
		}
		return -1 // ret: no successor
	}
	t0, t1 := term.Targets[0].ID, term.Targets[1].ID
	// Predict a backward target (loop) if one exists.
	if t0 <= curBlock {
		return t0
	}
	if t1 <= curBlock {
		return t1
	}
	// Otherwise predict the nearer (fall-through-like) target.
	if t0 < t1 {
		return t0
	}
	return t1
}

// launchDBBs launches dynamic basic blocks from the control trace (rule 3,
// §II-A) subject to speculation policy, live-DBB limits, and window space.
func (c *Core) launchDBBs(now int64) {
	launches := 0
	maxLaunch := c.Cfg.IssueWidth
	if maxLaunch < 1 {
		maxLaunch = 1
	}
	for launches < maxLaunch && c.bbCursor < len(c.tt.BBPath) {
		bid := int(c.tt.BBPath[c.bbCursor])
		if c.lastDBB != nil {
			switch c.Cfg.Branch {
			case config.BranchPerfect:
				// Launch immediately.
			case config.BranchStatic, config.BranchDynamic:
				if c.lastDBB.mispredict {
					// Wait for the terminator, then pay the penalty.
					if !c.lastDBB.termDone || now < c.launchAt {
						return
					}
				}
			default: // BranchNone
				if !c.lastDBB.termDone {
					return
				}
			}
		}
		if c.Cfg.MaxLiveDBB > 0 && c.liveDBB[bid] >= c.Cfg.MaxLiveDBB {
			return
		}
		if c.unretired() >= c.Cfg.WindowSize && c.unretired() > 0 {
			c.Stats.WindowStalls++
			return
		}
		c.launchOne(bid)
		launches++
	}
}

// launchOne stamps out the dynamic nodes of one DBB and binds dependence
// edges: intra-DBB edges to nodes of this instance, cross edges to the most
// recent dynamic instance of the producer (§II-A).
func (c *Core) launchOne(bid int) {
	bg := c.graph.Blocks[bid]
	prevBlock := -1
	if c.bbCursor > 0 {
		prevBlock = int(c.tt.BBPath[c.bbCursor-1])
	}
	c.bbCursor++

	d := c.allocDBB(bid, len(bg.Nodes))
	c.liveDBB[bid]++
	// nodes is a per-core scratch buffer: every position is overwritten below
	// before any read, so stale tail pointers are never observed.
	if cap(c.scratch) < len(bg.Nodes) {
		c.scratch = make([]*dynNode, len(bg.Nodes))
	}
	nodes := c.scratch[:len(bg.Nodes)]
	for pos := range bg.Nodes {
		sn := &bg.Nodes[pos]
		n := c.allocNode()
		n.in = sn.Instr
		n.class = Classify(sn.Instr)
		n.seq = c.seqCounter
		n.dbb = d
		if c.freeMask != nil && sn.Instr.Idx < len(c.freeMask) {
			n.free = c.freeMask[sn.Instr.Idx]
		}
		c.seqCounter++
		nodes[pos] = n
	}
	d.term = nodes[bg.TermPos]

	// Bind dependencies before updating lastDyn so cross edges see the
	// previous instances (loop-carried values).
	for pos := range bg.Nodes {
		sn := &bg.Nodes[pos]
		n := nodes[pos]
		bind := func(dep ddg.Dep) {
			var parent *dynNode
			if dep.Kind == ddg.DepIntra {
				parent = nodes[dep.Instr-bg.Nodes[0].Instr.Idx]
			} else {
				parent = c.lastDyn[dep.Instr]
			}
			if parent == nil {
				return
			}
			if c.Cfg.DecoupledSupply && dep.Kind == ddg.DepIntra {
				// DeSC structures (§VII-A): a send forwarding a load's data
				// (terminal load buffer) does not wait for the load, and a
				// store/atomic whose value comes from a recv (store value
				// buffer) drains without stalling the core.
				if n.in.Op == ir.OpCall && n.in.Callee == "send" && parent.in.Op == ir.OpLoad {
					n.fusedLoad = parent
					n.fusedSeq = parent.seq
					return
				}
				if (n.in.Op == ir.OpStore || n.in.Op == ir.OpAtomicAdd) &&
					parent.in.Op == ir.OpCall && parent.in.Callee == "recv" {
					parent.parkable = true
					return
				}
			}
			if parent.state != stateCompleted {
				parent.dependents = append(parent.dependents, n)
				n.parentsLeft++
			}
		}
		if sn.Instr.Op == ir.OpPhi {
			for _, pc := range sn.PhiCases {
				if pc.FromBlock == prevBlock && pc.Dep != nil {
					bind(*pc.Dep)
				}
			}
		} else {
			for _, dep := range sn.Deps {
				bind(dep)
			}
		}

		switch {
		case sn.Instr.IsMemory():
			if c.memCursor >= len(c.tt.Mem) {
				panic(fmt.Sprintf("core: tile %d memory trace exhausted at instruction %d", c.ID, sn.Instr.Idx))
			}
			ev := c.tt.Mem[c.memCursor]
			if int(ev.Instr) != sn.Instr.Idx {
				panic(fmt.Sprintf("core: tile %d memory trace out of sync: have instr %d, want %d", c.ID, ev.Instr, sn.Instr.Idx))
			}
			c.memCursor++
			n.addr = ev.Addr
			n.memSize = int(ev.Size)
			switch ev.Kind {
			case trace.KindLoad:
				n.memKind = mem.Read
			case trace.KindStore:
				n.memKind = mem.Write
			default:
				n.memKind = mem.Atomic
			}
			c.maoTotal++
			n.maoPos = c.maoTotal
			c.mao = append(c.mao, n)
		case sn.Instr.Op == ir.OpCall && (sn.Instr.Callee == "send" || sn.Instr.Callee == "recv"):
			if c.commCursor >= len(c.tt.Comm) {
				panic(fmt.Sprintf("core: tile %d comm trace exhausted", c.ID))
			}
			n.partner = int(c.tt.Comm[c.commCursor].Partner)
			c.commCursor++
		case sn.Instr.Op == ir.OpCall && len(sn.Instr.Callee) > 4 && sn.Instr.Callee[:4] == "acc_":
			if c.accCursor >= len(c.tt.Acc) {
				panic(fmt.Sprintf("core: tile %d accelerator trace exhausted", c.ID))
			}
			n.accCall = &c.tt.Acc[c.accCursor]
			c.accCursor++
		}
		if n.accCall != nil || (sn.Instr.Op == ir.OpCall && sn.Instr.Callee == "barrier") {
			c.syncOps++
		}
	}
	for pos, n := range nodes {
		c.lastDyn[bg.Nodes[pos].Instr.Idx] = n
		c.window = append(c.window, n)
		if n.parentsLeft == 0 {
			n.state = stateReady
			if !c.Cfg.InOrder {
				c.ready.push(n)
			}
		}
	}

	// Branch prediction (§III-C): decide whether launching the *next* DBB
	// must wait for this terminator plus the misprediction penalty.
	if c.bbCursor < len(c.tt.BBPath) {
		actual := int(c.tt.BBPath[c.bbCursor])
		switch c.Cfg.Branch {
		case config.BranchStatic:
			if staticPrediction(d.term.in, bid) != actual {
				d.mispredict = true
				c.Stats.Mispredict++
			}
		case config.BranchDynamic:
			if !c.gsharePredict(d.term.in, actual) {
				d.mispredict = true
				c.Stats.Mispredict++
			}
		}
	}
	// The displaced lastDBB stays live only while it gates the next launch;
	// once replaced, recycle it if every node already completed.
	if old := c.lastDBB; old != nil && old != d && old.remaining == 0 {
		c.freeDBBs = append(c.freeDBBs, old)
	}
	c.lastDBB = d
	c.progress++
}

// gsharePredict predicts one conditional branch with a gshare predictor and
// trains it on the traced outcome; it returns whether the prediction was
// correct. Unconditional terminators always predict correctly.
func (c *Core) gsharePredict(term *ir.Instr, actualNext int) bool {
	if term.Op != ir.OpCondBr {
		return true
	}
	if c.bpCounters == nil {
		c.bpCounters = make([]uint8, gshareMask+1)
		// Weakly taken initial state.
		for i := range c.bpCounters {
			c.bpCounters[i] = 2
		}
	}
	taken := term.Targets[0].ID == actualNext
	idx := (uint32(term.Idx)*2654435761 ^ c.bpHistory) & gshareMask
	predictTaken := c.bpCounters[idx] >= 2
	if taken {
		if c.bpCounters[idx] < 3 {
			c.bpCounters[idx]++
		}
		c.bpHistory = (c.bpHistory << 1) | 1
	} else {
		if c.bpCounters[idx] > 0 {
			c.bpCounters[idx]--
		}
		c.bpHistory = c.bpHistory << 1
	}
	c.bpHistory &= gshareMask
	return predictTaken == taken
}

// issue dispatches up to IssueWidth ready nodes per cycle subject to the
// window, functional units, the MAO, and communication buffers (rule 1,
// §II-A; §III-A).
func (c *Core) issue(now int64) {
	if c.Cfg.InOrder {
		c.issueInOrder(now)
		return
	}
	issued := 0
	deferred := c.deferred[:0]
	windowLimit := c.windowBaseSeq() + int64(c.Cfg.WindowSize)
	for issued < c.Cfg.IssueWidth && c.ready.Len() > 0 {
		n := c.ready[0]
		if n.free {
			// Fused idiom: retires instantly without consuming issue
			// bandwidth, waking dependents within this cycle.
			c.ready.pop()
			n.state = stateIssued
			c.outstanding++
			c.complete(n, now)
			continue
		}
		if n.seq >= windowLimit {
			// Oldest ready node is outside the window; all others are too.
			c.Stats.WindowStalls++
			break
		}
		c.ready.pop()
		if ok := c.tryIssue(n, now); ok {
			issued++
		} else {
			deferred = append(deferred, n)
		}
	}
	for i, n := range deferred {
		c.ready.push(n)
		deferred[i] = nil
	}
	c.deferred = deferred[:0]
}

// issueInOrder models a scoreboarded in-order pipeline: instructions issue
// strictly in program order; issue stalls when the next instruction's
// operands are pending (stall-on-use), while independent younger work never
// bypasses it. Completion remains out of order (hit-under-miss), and stores
// blocked only on memory ordering park in a store buffer (the ready heap,
// unused for issue in this mode) so they drain without stalling the pipe.
func (c *Core) issueInOrder(now int64) {
	// Drain parked stores/recvs in program order; they already consumed
	// their issue slots. Stop at the first blocked one so same-channel
	// recvs keep FIFO order.
	for c.ready.Len() > 0 {
		if !c.tryIssue(c.ready[0], now) {
			break
		}
		c.ready.pop()
	}
	issued := 0
	for issued < c.Cfg.IssueWidth {
		if c.issuePtr < c.windowHead {
			c.issuePtr = c.windowHead
		}
		// Skip already-processed entries.
		for c.issuePtr < len(c.window) {
			n := c.window[c.issuePtr]
			if n == nil || n.state == stateIssued || n.state == stateCompleted {
				c.issuePtr++
				continue
			}
			break
		}
		if c.issuePtr >= len(c.window) {
			return
		}
		n := c.window[c.issuePtr]
		if n.parentsLeft > 0 {
			return // stall-on-use
		}
		if n.free {
			n.state = stateIssued
			c.outstanding++
			c.complete(n, now)
			c.issuePtr++
			continue
		}
		// Store-buffer semantics: a store (or atomic) blocked only on MAO
		// ordering parks and drains later instead of stalling the pipeline.
		if n.class == config.ClassMem && n.memKind != mem.Read &&
			c.maoInUse+c.ready.Len() < c.Cfg.LSQSize && c.maoOrderBlocked(n) {
			c.ready.push(n)
			c.issuePtr++
			issued++
			continue
		}
		// Store-value-buffer semantics (DeSC, §VII-A): a recv whose data
		// only feeds a store leaves the pipeline immediately; the message
		// is consumed from the fabric whenever it arrives.
		if n.parkable && len(c.pendingDrain) < maxParked(c.Cfg.MaxMessages) {
			if !c.fabric.TryRecv(c.ID, n.partner, now) {
				c.pendingDrain = append(c.pendingDrain, n.partner)
			}
			c.Stats.Recvs++
			c.issueFixed(n, now, c.Cfg.Latency(config.ClassSpecial))
			c.issuePtr++
			issued++
			continue
		}
		if !c.tryIssue(n, now) {
			return // structural hazard
		}
		c.issuePtr++
		issued++
	}
}

// tryIssue attempts to issue one node; false means a structural hazard (FU,
// MAO, communication) and the node retries next cycle.
func (c *Core) tryIssue(n *dynNode, now int64) bool {
	if lim := c.Cfg.FULimit(n.class); lim > 0 && c.fuBusy[n.class] >= lim {
		c.Stats.FUStalls++
		return false
	}
	switch {
	case n.class == config.ClassMem:
		return c.tryIssueMem(n, now)
	case n.in.Op == ir.OpCall && n.in.Callee == "send":
		// A recycled fused load (seq mismatch) necessarily completed before it
		// was retired and repooled, so the plain-send path below is correct.
		if n.fusedLoad != nil && n.fusedLoad.seq == n.fusedSeq && n.fusedLoad.state != stateCompleted {
			// Terminal load buffer: reserve the slot now; the message
			// matures when the load's data returns.
			set, ok := c.fabric.TrySendFuture(c.ID, n.partner)
			if !ok {
				c.Stats.CommStalls++
				return false
			}
			n.fusedLoad.onComplete = append(n.fusedLoad.onComplete, func(t int64) { set(t) })
			c.Stats.Sends++
			c.issueFixed(n, now, c.Cfg.Latency(config.ClassSpecial))
			return true
		}
		if !c.fabric.TrySend(c.ID, n.partner, now) {
			c.Stats.CommStalls++
			return false
		}
		c.Stats.Sends++
		c.issueFixed(n, now, c.Cfg.Latency(config.ClassSpecial))
		return true
	case n.in.Op == ir.OpCall && n.in.Callee == "barrier":
		if !n.barrierArrived {
			n.barrierSeq = c.fabric.BarrierArrive(c.ID)
			n.barrierArrived = true
			// Arrival is a state change other tiles observe even though this
			// tile stalls, so it must defeat idle detection.
			c.progress++
		}
		if !c.fabric.BarrierReleased(n.barrierSeq) {
			c.Stats.CommStalls++
			return false
		}
		c.issueFixed(n, now, c.Cfg.Latency(config.ClassSpecial))
		return true
	case n.in.Op == ir.OpCall && n.in.Callee == "recv":
		if !c.fabric.TryRecv(c.ID, n.partner, now) {
			c.Stats.CommStalls++
			return false
		}
		c.Stats.Recvs++
		c.issueFixed(n, now, c.Cfg.Latency(config.ClassSpecial))
		return true
	case n.accCall != nil:
		if c.accel == nil {
			panic(fmt.Sprintf("core: tile %d has no accelerator port for %s", c.ID, n.accCall.Name))
		}
		c.markIssued(n)
		c.Stats.AccCalls++
		if err := c.accel.Invoke(n.accCall.Name, n.accCall.Params, now, c.memDone(n)); err != nil {
			panic(fmt.Sprintf("core: tile %d: %v", c.ID, err))
		}
		return true
	default:
		c.issueFixed(n, now, c.Cfg.Latency(n.class))
		return true
	}
}

func (c *Core) markIssued(n *dynNode) {
	n.state = stateIssued
	c.outstanding++
	c.progress++
	if lim := c.Cfg.FULimit(n.class); lim > 0 {
		c.fuBusy[n.class]++
	}
}

func (c *Core) issueFixed(n *dynNode, now, latency int64) {
	c.markIssued(n)
	c.completions.push(completion{at: now + c.scaleLat(latency), node: n})
}

// tryIssueMem enforces MAO ordering (§II-A "Data Dependencies") and LSQ
// capacity (§III-A), then dispatches to the memory hierarchy.
func (c *Core) tryIssueMem(n *dynNode, now int64) bool {
	if c.maoInUse >= c.Cfg.LSQSize {
		c.Stats.MAOStalls++
		return false
	}
	// Prune the completed prefix: complete() nils slots, so a nil entry is a
	// finished access.
	for c.maoHead < len(c.mao) && c.mao[c.maoHead] == nil {
		c.maoHead++
	}
	if c.maoHead > 4096 && c.maoHead*2 > len(c.mao) {
		k := copy(c.mao, c.mao[c.maoHead:])
		for i := k; i < len(c.mao); i++ {
			c.mao[i] = nil
		}
		c.mao = c.mao[:k]
		c.maoBase += int64(c.maoHead)
		c.maoHead = 0
	}
	if c.maoOrderBlocked(n) {
		c.Stats.MAOStalls++
		return false
	}
	c.markIssued(n)
	c.maoInUse++
	done := c.memDone(n)
	switch n.memKind {
	case mem.Read:
		c.Stats.Loads++
	case mem.Write:
		c.Stats.Stores++
	default:
		c.Stats.Atomics++
		// Read-modify-write surcharge, applied inside the reusable doneCB
		// instead of wrapping it in a fresh closure per access.
		n.doneAdj = c.Cfg.AtomicExtraLatency
	}
	c.memp.Access(n.addr, n.memSize, n.memKind, now, done)
	return true
}

// maxParked bounds the store-value buffer occupancy.
func maxParked(maxMessages int) int {
	if maxMessages <= 0 {
		return 512
	}
	return maxMessages
}

// maoOrderBlocked applies the MAO ordering rules (§II-A): a store may not
// issue past an older incomplete access with matching or unresolved address;
// a load only checks older stores. Perfect alias speculation drops the
// unresolved-address conservatism.
func (c *Core) maoOrderBlocked(n *dynNode) bool {
	isStore := n.memKind != mem.Read
	for i := c.maoHead; i < len(c.mao); i++ {
		older := c.mao[i]
		if older == nil {
			continue // completed mid-list entry (slot cleared by complete)
		}
		if older.seq >= n.seq {
			break
		}
		olderIsStore := older.memKind != mem.Read
		if !isStore && !olderIsStore {
			continue // load vs load never conflicts
		}
		unresolved := older.state == stateWaiting && !c.Cfg.PerfectAliasSpec
		if unresolved || overlaps(older, n) {
			return true
		}
	}
	return false
}

func overlaps(a, b *dynNode) bool {
	return a.addr < b.addr+uint64(b.memSize) && b.addr < a.addr+uint64(a.memSize)
}

// Progress returns a monotone counter of state-changing events (launches,
// issues, completions, drains, barrier arrivals). Two equal readings around a
// Step mean the step observably did nothing except advance per-cycle stall
// counters.
func (c *Core) Progress() uint64 { return c.progress }

// MaySync reports whether the core's next Step might touch shared
// synchronization state: a launched-but-incomplete barrier or accelerator
// node exists, or one of the next-launchable trace blocks (the same
// IssueWidth-bounded window launchDBBs can open in one step) contains such
// an op. Conservative by design — the parallel stepper's ordering only
// needs the answer to never be falsely false.
func (c *Core) MaySync() bool {
	if c.finished {
		return false
	}
	if c.syncOps > 0 {
		return true
	}
	look := c.Cfg.IssueWidth
	if look < 1 {
		look = 1
	}
	end := c.bbCursor + look
	if end > len(c.tt.BBPath) {
		end = len(c.tt.BBPath)
	}
	for i := c.bbCursor; i < end; i++ {
		if c.blockSync[c.tt.BBPath[i]] {
			return true
		}
	}
	return false
}

// NextEvent returns a lower bound on the next global cycle at which this
// tile's state can change *on its own* (pending completions, the mispredict
// launch release). Externally triggered changes — memory returns, fabric
// arrivals, barrier releases — are accounted by the owning component's
// horizon. mem.HorizonNone means no self-scheduled event.
func (c *Core) NextEvent(now int64) int64 {
	if c.finished {
		return mem.HorizonNone
	}
	h := mem.HorizonNone
	if c.completions.Len() > 0 && c.completions[0].at < h {
		h = c.completions[0].at
	}
	if c.lastDBB != nil && c.lastDBB.mispredict && c.lastDBB.termDone && now < c.launchAt && c.launchAt < h {
		h = c.launchAt
	}
	return h
}

// SoleCompletionAt reports whether the core's only pending self-scheduled
// work is exactly one in-flight operation completing at cycle at: nothing
// else issued, no parked store-value drains, and no gated mispredict launch
// release pending. The schedule recorder uses it to certify that an
// accelerator completion is the lone event a quiet window is waiting on.
func (c *Core) SoleCompletionAt(now, at int64) bool {
	if c.finished || c.outstanding != 1 || c.completions.Len() != 1 || c.completions[0].at != at {
		return false
	}
	if len(c.pendingDrain) != 0 {
		return false
	}
	if c.lastDBB != nil && c.lastDBB.mispredict && c.lastDBB.termDone && now < c.launchAt {
		return false
	}
	return true
}

// StallSnapshot captures the stall counters that advance every stalled cycle
// even when the tile's architectural state is frozen. The Interleaver
// brackets a tile's Step with snapshots and replays the constant per-step
// delta over skipped cycles so results stay bit-identical to the naive loop.
type StallSnapshot struct {
	MAO, FU, Window, Comm int64
}

// StallCounters reads the current per-cycle stall counters.
func (c *Core) StallCounters() StallSnapshot {
	return StallSnapshot{c.Stats.MAOStalls, c.Stats.FUStalls, c.Stats.WindowStalls, c.Stats.CommStalls}
}

// AddStallCycles replays the per-step stall delta d for k elided steps.
func (c *Core) AddStallCycles(d StallSnapshot, k int64) {
	c.Stats.MAOStalls += d.MAO * k
	c.Stats.FUStalls += d.FU * k
	c.Stats.WindowStalls += d.Window * k
	c.Stats.CommStalls += d.Comm * k
}

// Sub returns the element-wise difference a - b.
func (a StallSnapshot) Sub(b StallSnapshot) StallSnapshot {
	return StallSnapshot{a.MAO - b.MAO, a.FU - b.FU, a.Window - b.Window, a.Comm - b.Comm}
}
