// Package core implements MosaicSim-Go's primary contribution: the
// lightweight graph-based tile timing model (§II-A, §III). A tile replays
// its dynamic traces against the static DDG under microarchitectural
// resource limits: issue width, a sliding instruction window (ROB),
// functional-unit pools, a Memory Address Orderer (LSQ), live-DBB limits,
// and control/alias speculation options.
package core

import (
	"mosaicsim/internal/config"
	"mosaicsim/internal/ir"
)

// Classify maps an IR instruction to its cost class (§III-B).
func Classify(in *ir.Instr) config.InstrClass {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpLShr, ir.OpAShr, ir.OpICmp, ir.OpSelect, ir.OpGEP:
		return config.ClassIntALU
	case ir.OpMul:
		return config.ClassIntMul
	case ir.OpSDiv, ir.OpSRem:
		return config.ClassIntDiv
	case ir.OpFAdd, ir.OpFSub, ir.OpFCmp:
		return config.ClassFPALU
	case ir.OpFMul:
		return config.ClassFPMul
	case ir.OpFDiv:
		return config.ClassFPDiv
	case ir.OpLoad, ir.OpStore, ir.OpAtomicAdd:
		return config.ClassMem
	case ir.OpBr, ir.OpCondBr, ir.OpRet:
		return config.ClassBranch
	case ir.OpCast, ir.OpPhi:
		return config.ClassCast
	case ir.OpCall:
		switch in.Callee {
		case "sqrt", "exp", "log", "sin", "cos", "pow":
			return config.ClassFPDiv
		case "fabs", "floor", "fmin", "fmax":
			return config.ClassFPALU
		case "tile_id", "num_tiles":
			return config.ClassIntALU
		default:
			return config.ClassSpecial
		}
	default:
		return config.ClassSpecial
	}
}
