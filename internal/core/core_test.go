package core

import (
	"testing"

	"mosaicsim/internal/cc"
	"mosaicsim/internal/config"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/mem"
	"mosaicsim/internal/trace"
)

// fakeMem completes every access after a fixed latency.
type fakeMem struct {
	lat      int64
	accesses int64
}

func (f *fakeMem) Access(addr uint64, size int, kind mem.Kind, now int64, done func(int64)) {
	f.accesses++
	done(now + f.lat)
}

// fakeFabric never blocks.
type fakeFabric struct{ sends, recvs int64 }

func (f *fakeFabric) TrySend(src, dst int, now int64) bool { f.sends++; return true }
func (f *fakeFabric) TryRecv(dst, src int, now int64) bool { f.recvs++; return true }
func (f *fakeFabric) BarrierArrive(tile int) int64         { return 0 }
func (f *fakeFabric) BarrierReleased(seq int64) bool       { return true }
func (f *fakeFabric) TrySendFuture(src, dst int) (func(int64), bool) {
	f.sends++
	return func(int64) {}, true
}

// traceKernel compiles src, traces `kernel` with the given args on one tile,
// and returns the DDG and tile trace.
func traceKernel(t *testing.T, src string, setup func(m *interp.Memory) []uint64) (*ddg.Graph, *trace.TileTrace) {
	t.Helper()
	mod, err := cc.Compile(src, "t")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := mod.Func("kernel")
	m := interp.NewMemory(1 << 22)
	args := setup(m)
	res, err := interp.Run(f, m, args, interp.Options{})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	return ddg.Build(f), res.Trace.Tiles[0]
}

// runCore drives a single tile to completion and returns it.
func runCore(t *testing.T, cfg config.CoreConfig, g *ddg.Graph, tt *trace.TileTrace, memLat int64) *Core {
	t.Helper()
	c := New(0, cfg, g, tt, &fakeMem{lat: memLat}, &fakeFabric{}, nil)
	for now := int64(0); ; now++ {
		if !c.Step(now) {
			break
		}
		if now > 50_000_000 {
			t.Fatal("core never finished")
		}
	}
	return c
}

const sumSrc = `
void kernel(double* A, long n) {
  double acc = 0.0;
  for (long i = 0; i < n; i++) {
    acc += A[i];
  }
  A[0] = acc;
}
`

const indepSrc = `
void kernel(double* A, double* B, long n) {
  for (long i = 0; i < n; i++) {
    B[i] = A[i] * 2.0 + 1.0;
  }
}
`

func setupArray(n int) func(m *interp.Memory) []uint64 {
	return func(m *interp.Memory) []uint64 {
		pa := m.AllocF64(make([]float64, n))
		return []uint64{pa, uint64(n)}
	}
}

func setupTwoArrays(n int) func(m *interp.Memory) []uint64 {
	return func(m *interp.Memory) []uint64 {
		pa := m.AllocF64(make([]float64, n))
		pb := m.Alloc(int64(n)*8, 64)
		return []uint64{pa, pb, uint64(n)}
	}
}

func TestRetiresExactlyTraceInstructions(t *testing.T) {
	g, tt := traceKernel(t, sumSrc, setupArray(64))
	c := runCore(t, config.OutOfOrderCore(), g, tt, 4)
	if c.Stats.Instrs != tt.DynInstrs {
		t.Errorf("retired %d instructions, trace has %d", c.Stats.Instrs, tt.DynInstrs)
	}
	if c.Stats.Cycles <= 0 {
		t.Error("no cycles accumulated")
	}
	if c.Stats.Loads != 64 || c.Stats.Stores != 1 {
		t.Errorf("loads=%d stores=%d, want 64/1", c.Stats.Loads, c.Stats.Stores)
	}
	if c.Stats.EnergyPJ <= 0 {
		t.Error("no energy accumulated")
	}
}

func TestOutOfOrderBeatsInOrder(t *testing.T) {
	g, tt := traceKernel(t, indepSrc, setupTwoArrays(256))
	ooo := runCore(t, config.OutOfOrderCore(), g, tt, 20)
	g2, tt2 := traceKernel(t, indepSrc, setupTwoArrays(256))
	ino := runCore(t, config.InOrderCore(), g2, tt2, 20)
	if ooo.Stats.Cycles >= ino.Stats.Cycles {
		t.Errorf("OoO (%d cycles) should beat InO (%d cycles)", ooo.Stats.Cycles, ino.Stats.Cycles)
	}
	if ratio := float64(ino.Stats.Cycles) / float64(ooo.Stats.Cycles); ratio < 2 {
		t.Errorf("OoO speedup on independent work = %.2fx, want >= 2x", ratio)
	}
}

func TestIssueWidthMatters(t *testing.T) {
	mk := func(width int) int64 {
		cfg := config.OutOfOrderCore()
		cfg.IssueWidth = width
		g, tt := traceKernel(t, indepSrc, setupTwoArrays(256))
		return runCore(t, cfg, g, tt, 2).Stats.Cycles
	}
	w1, w4 := mk(1), mk(4)
	if w4 >= w1 {
		t.Errorf("width 4 (%d) should beat width 1 (%d)", w4, w1)
	}
}

func TestWindowSizeMatters(t *testing.T) {
	mk := func(window int) int64 {
		cfg := config.OutOfOrderCore()
		cfg.WindowSize = window
		g, tt := traceKernel(t, indepSrc, setupTwoArrays(256))
		return runCore(t, cfg, g, tt, 100).Stats.Cycles // long memory latency
	}
	small, big := mk(8), mk(256)
	if big >= small {
		t.Errorf("window 256 (%d) should beat window 8 (%d) under long memory latency", big, small)
	}
}

func TestIPCBoundedByIssueWidth(t *testing.T) {
	g, tt := traceKernel(t, indepSrc, setupTwoArrays(512))
	cfg := config.OutOfOrderCore()
	c := runCore(t, cfg, g, tt, 1)
	if ipc := c.Stats.IPC(); ipc > float64(cfg.IssueWidth) {
		t.Errorf("IPC %.2f exceeds issue width %d", ipc, cfg.IssueWidth)
	}
	if c.Stats.Cycles < tt.DynInstrs/int64(cfg.IssueWidth) {
		t.Errorf("cycles %d below theoretical minimum %d", c.Stats.Cycles, tt.DynInstrs/int64(cfg.IssueWidth))
	}
}

func TestDeterminism(t *testing.T) {
	g, tt := traceKernel(t, sumSrc, setupArray(128))
	a := runCore(t, config.OutOfOrderCore(), g, tt, 7).Stats
	b := runCore(t, config.OutOfOrderCore(), g, tt, 7).Stats
	if a != b {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

const rawSrc = `
void kernel(double* A, long n) {
  for (long i = 0; i < n; i++) {
    A[0] = A[0] + (double)i;   // serial read-modify-write on one address
  }
}
`

func TestMAOSerializesSameAddress(t *testing.T) {
	g, tt := traceKernel(t, rawSrc, setupArray(4))
	c := runCore(t, config.OutOfOrderCore(), g, tt, 30)
	// 32 iterations of load+store on one address with 30-cycle memory: the
	// RAW chain forces >= n*(2*30) cycles of memory serialization.
	minCycles := int64(4 * 2 * 30)
	if c.Stats.Cycles < minCycles {
		t.Errorf("cycles %d below RAW serialization floor %d", c.Stats.Cycles, minCycles)
	}
}

func TestAliasSpeculationHelpsIndependentAccesses(t *testing.T) {
	run := func(spec bool) int64 {
		cfg := config.OutOfOrderCore()
		cfg.PerfectAliasSpec = spec
		g, tt := traceKernel(t, indepSrc, setupTwoArrays(128))
		return runCore(t, cfg, g, tt, 50).Stats.Cycles
	}
	withSpec, withoutSpec := run(true), run(false)
	if withSpec > withoutSpec {
		t.Errorf("perfect alias speculation slower (%d) than conservative (%d)", withSpec, withoutSpec)
	}
}

func TestLiveDBBLimitSerializesIterations(t *testing.T) {
	run := func(limit int) int64 {
		cfg := config.AcceleratorTileCore(limit)
		g, tt := traceKernel(t, indepSrc, setupTwoArrays(128))
		return runCore(t, cfg, g, tt, 10).Stats.Cycles
	}
	one, eight := run(1), run(8)
	if eight >= one {
		t.Errorf("8 live DBBs (%d cycles) should beat 1 (%d cycles): hardware loop unrolling", eight, one)
	}
}

func TestFunctionalUnitLimits(t *testing.T) {
	run := func(fpmul int) int64 {
		cfg := config.OutOfOrderCore()
		if fpmul > 0 {
			cfg.FunctionalUnits = map[string]int{"fp_mul": fpmul}
		}
		g, tt := traceKernel(t, indepSrc, setupTwoArrays(256))
		return runCore(t, cfg, g, tt, 2).Stats.Cycles
	}
	limited, unlimited := run(1), run(0)
	if unlimited > limited {
		t.Errorf("unlimited FUs (%d) slower than 1 fp_mul (%d)", unlimited, limited)
	}
	if limited == unlimited {
		t.Log("FU limit had no effect on this kernel (acceptable but unexpected)")
	}
}

const branchySrc = `
void kernel(long* A, long n) {
  long acc = 0;
  for (long i = 0; i < n; i++) {
    if (A[i] % 3 == 0) {
      acc += A[i];
    } else {
      acc -= 1;
    }
  }
  A[0] = acc;
}
`

func TestBranchSpeculationOrdering(t *testing.T) {
	run := func(bp config.BranchPredictor) (int64, int64) {
		cfg := config.OutOfOrderCore()
		cfg.Branch = bp
		g, tt := traceKernel(t, branchySrc, func(m *interp.Memory) []uint64 {
			vals := make([]int64, 200)
			for i := range vals {
				vals[i] = int64(i * 7)
			}
			return []uint64{m.AllocI64(vals), uint64(len(vals))}
		})
		c := runCore(t, cfg, g, tt, 10)
		return c.Stats.Cycles, c.Stats.Mispredict
	}
	perfect, _ := run(config.BranchPerfect)
	static, mispredicts := run(config.BranchStatic)
	none, _ := run(config.BranchNone)
	if perfect > static || static > none {
		t.Errorf("speculation ordering violated: perfect=%d static=%d none=%d", perfect, static, none)
	}
	if mispredicts == 0 {
		t.Error("static predictor reported no mispredictions on data-dependent branches")
	}
}

func TestSendRecvCounted(t *testing.T) {
	src := `
void kernel(long* A, long n) {
  for (long i = 0; i < n; i++) {
    send(0, A[i]);
    long v = recv_long(0);
    A[i] = v;
  }
}
`
	// Self-send/recv through the always-available fake fabric.
	g, tt := traceKernel(t, src, func(m *interp.Memory) []uint64 {
		return []uint64{m.AllocI64(make([]int64, 8)), 8}
	})
	c := runCore(t, config.OutOfOrderCore(), g, tt, 2)
	if c.Stats.Sends != 8 || c.Stats.Recvs != 8 {
		t.Errorf("sends=%d recvs=%d, want 8/8", c.Stats.Sends, c.Stats.Recvs)
	}
}

type stubAccel struct {
	cycles int64
	calls  int
}

func (a *stubAccel) Invoke(name string, params []int64, now int64, done func(int64)) error {
	a.calls++
	done(now + a.cycles)
	return nil
}

func TestAcceleratorInvocationBlocksCompletion(t *testing.T) {
	src := `
void kernel(long* A, long n) {
  acc_test(A, n);
  A[0] = 1;
}
`
	mod, err := cc.Compile(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Func("kernel")
	m := interp.NewMemory(1 << 20)
	pa := m.AllocI64(make([]int64, 4))
	res, err := interp.Run(f, m, []uint64{pa, 4}, interp.Options{
		Acc: map[string]interp.AccFunc{"acc_test": func(mem *interp.Memory, params []int64) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := ddg.Build(f)
	acc := &stubAccel{cycles: 5000}
	c := New(0, config.OutOfOrderCore(), g, res.Trace.Tiles[0], &fakeMem{lat: 2}, &fakeFabric{}, acc)
	for now := int64(0); c.Step(now); now++ {
		if now > 1_000_000 {
			t.Fatal("never finished")
		}
	}
	if acc.calls != 1 {
		t.Errorf("accelerator invoked %d times, want 1", acc.calls)
	}
	if c.Stats.Cycles < 5000 {
		t.Errorf("cycles %d; accelerator latency (5000) must dominate", c.Stats.Cycles)
	}
	if c.Stats.AccCalls != 1 {
		t.Errorf("AccCalls = %d", c.Stats.AccCalls)
	}
}

func TestCorruptTracePanics(t *testing.T) {
	g, tt := traceKernel(t, sumSrc, setupArray(8))
	// Corrupt the memory trace instruction index.
	tt.Mem[0].Instr += 99
	defer func() {
		if recover() == nil {
			t.Error("out-of-sync memory trace must panic")
		}
	}()
	runCore(t, config.OutOfOrderCore(), g, tt, 2)
}

func TestClockScaling(t *testing.T) {
	g, tt := traceKernel(t, sumSrc, setupArray(64))
	fast := runCore(t, config.OutOfOrderCore(), g, tt, 4)
	slow := New(0, config.OutOfOrderCore(), g, tt, &fakeMem{lat: 4}, &fakeFabric{}, nil)
	slow.SetClockScale(2, 1) // core at half the global clock
	for now := int64(0); slow.Step(now); now++ {
		if now > 50_000_000 {
			t.Fatal("scaled core never finished")
		}
	}
	if slow.Stats.Cycles <= fast.Stats.Cycles {
		t.Errorf("half-clock core (%d global cycles) should take longer than full-clock (%d)", slow.Stats.Cycles, fast.Stats.Cycles)
	}
}

func TestClassifyCoversAllOpcodes(t *testing.T) {
	cases := map[ir.Opcode]config.InstrClass{
		ir.OpAdd: config.ClassIntALU, ir.OpMul: config.ClassIntMul,
		ir.OpSDiv: config.ClassIntDiv, ir.OpFAdd: config.ClassFPALU,
		ir.OpFMul: config.ClassFPMul, ir.OpFDiv: config.ClassFPDiv,
		ir.OpLoad: config.ClassMem, ir.OpStore: config.ClassMem,
		ir.OpAtomicAdd: config.ClassMem, ir.OpBr: config.ClassBranch,
		ir.OpPhi: config.ClassCast, ir.OpGEP: config.ClassIntALU,
	}
	for op, want := range cases {
		if got := Classify(&ir.Instr{Op: op}); got != want {
			t.Errorf("Classify(%s) = %s, want %s", op, got, want)
		}
	}
	if got := Classify(&ir.Instr{Op: ir.OpCall, Callee: "sqrt"}); got != config.ClassFPDiv {
		t.Errorf("sqrt classified as %s", got)
	}
	if got := Classify(&ir.Instr{Op: ir.OpCall, Callee: "send"}); got != config.ClassSpecial {
		t.Errorf("send classified as %s", got)
	}
}

func TestDynamicBranchPredictor(t *testing.T) {
	// A loop with a strongly-biased data-dependent branch: gshare should
	// learn it and beat the static predictor, while never beating perfect.
	src := `
void kernel(long* A, long* out, long n) {
  long acc = 0;
  for (long i = 0; i < n; i++) {
    if (A[i] > 0) {   // biased: ~94% taken
      acc += A[i];
    } else {
      acc -= A[i];
    }
  }
  out[0] = acc;
}
`
	setup := func(m *interp.Memory) []uint64 {
		// Period-4 pattern: fits in the gshare history register, so the
		// dynamic predictor can learn it while the static one cannot.
		vals := make([]int64, 600)
		for i := range vals {
			vals[i] = 5
			if i%4 == 0 {
				vals[i] = -3
			}
		}
		return []uint64{m.AllocI64(vals), m.Alloc(8, 8), uint64(len(vals))}
	}
	run := func(bp config.BranchPredictor) (int64, int64) {
		cfg := config.OutOfOrderCore()
		cfg.Branch = bp
		cfg.MispredictPenalty = 12
		g, tt := traceKernel(t, src, setup)
		c := runCore(t, cfg, g, tt, 4)
		return c.Stats.Cycles, c.Stats.Mispredict
	}
	perfect, _ := run(config.BranchPerfect)
	dynamic, dynMiss := run(config.BranchDynamic)
	static, statMiss := run(config.BranchStatic)
	none, _ := run(config.BranchNone)
	if dynMiss == 0 {
		t.Error("gshare reported zero mispredictions on a data-dependent branch")
	}
	if dynMiss >= statMiss {
		t.Errorf("gshare mispredicts (%d) should be below static's (%d) on a biased branch", dynMiss, statMiss)
	}
	if !(perfect <= dynamic && dynamic <= static && static <= none) {
		t.Errorf("speculation ordering violated: perfect=%d dynamic=%d static=%d none=%d",
			perfect, dynamic, static, none)
	}
}

func TestGsharePredictsUnconditional(t *testing.T) {
	g, tt := traceKernel(t, sumSrc, setupArray(16))
	cfg := config.OutOfOrderCore()
	cfg.Branch = config.BranchDynamic
	c := runCore(t, cfg, g, tt, 2)
	// Unconditional branches never mispredict; only the loop back-edge
	// (condbr) can, and a monotone loop should train quickly.
	if c.Stats.Mispredict > 4 {
		t.Errorf("too many mispredicts on a simple loop: %d", c.Stats.Mispredict)
	}
}

// TestStepSteadyStateAllocs pins the zero-alloc contract of the simulation
// hot path: once the node/DBB pools and backing arrays are warm, stepping the
// core must not allocate at all. A regression here silently multiplies GC
// pressure by the dynamic instruction count.
func TestStepSteadyStateAllocs(t *testing.T) {
	g, tt := traceKernel(t, indepSrc, setupTwoArrays(4096))
	c := New(0, config.OutOfOrderCore(), g, tt, &fakeMem{lat: 8}, &fakeFabric{}, nil)
	now := int64(0)
	for i := 0; i < 2000; i++ {
		if !c.Step(now) {
			t.Fatal("core finished during warmup; grow the workload")
		}
		now++
	}
	avg := testing.AllocsPerRun(1000, func() {
		c.Step(now)
		now++
	})
	if avg != 0 {
		t.Errorf("core.Step allocates %.2f objects/cycle in steady state, want 0", avg)
	}
}
