package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mosaicsim/internal/config"
	"mosaicsim/internal/jobs"
	"mosaicsim/internal/sim"
)

// newTestServer stands up a manager and an httptest server over it, both
// torn down with the test.
func newTestServer(t *testing.T, opts jobs.Options) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	m := jobs.NewManager(opts)
	ts := httptest.NewServer(New(m, nil))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return ts, m
}

func postJob(t *testing.T, ts *httptest.Server, spec jobs.Spec) (jobs.Status, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobs.Status
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) jobs.Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", id, resp.Status, b)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal after %v (state %s)", id, timeout, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGoldenReportMatchesSessionPath is the golden seam test: the report a
// job serves over HTTP must be byte-identical to what a direct sim.Session
// run of the same spec produces (modulo the transport's whitespace
// indentation, which json.Compact strips from both sides).
func TestGoldenReportMatchesSessionPath(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{Workers: 2, QueueDepth: 8})
	spec := jobs.Spec{Workload: "sgemm", Scale: "tiny", Tiles: 2}

	st, resp := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}
	if got, want := resp.Header.Get("Location"), "/v1/jobs/"+st.ID; got != want {
		t.Errorf("Location = %q, want %q", got, want)
	}
	final := waitDone(t, ts, st.ID, 60*time.Second)
	if final.State != jobs.StateDone {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	if len(final.Report) == 0 {
		t.Fatal("done job served no report")
	}

	// The CLI/Session path: same spec, fresh private cache, direct engine run.
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := norm.SessionOptions(sim.NewCache())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	if err := json.Compact(&got, final.Report); err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Errorf("HTTP report diverges from Session path:\n http: %s\n  sim: %s", got.String(), want)
	}
}

// TestGoldenHeterogeneousTopology submits a heterogeneous core+accel
// topology through mosaicd — once by preset name and once as the inline
// declarative form — and checks both reports are byte-identical to a direct
// sim.Session run over the same topology. It also checks the per-tile-kind
// metrics distinguish core time from accelerator-tile time after the run.
func TestGoldenHeterogeneousTopology(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{Workers: 2, QueueDepth: 8})

	byPreset := jobs.Spec{Workload: "sgemm", Scale: "tiny", Preset: "core-accel"}
	inline, err := config.TopologyPreset("core-accel")
	if err != nil {
		t.Fatal(err)
	}
	byInline := jobs.Spec{Workload: "sgemm", Scale: "tiny", Topology: inline}

	var reports [][]byte
	for _, spec := range []jobs.Spec{byPreset, byInline} {
		st, resp := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit: %s", resp.Status)
		}
		final := waitDone(t, ts, st.ID, 60*time.Second)
		if final.State != jobs.StateDone {
			t.Fatalf("state = %s (%s), want done", final.State, final.Error)
		}
		var got bytes.Buffer
		if err := json.Compact(&got, final.Report); err != nil {
			t.Fatal(err)
		}
		reports = append(reports, got.Bytes())
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Errorf("preset and inline topology reports diverge:\npreset: %s\ninline: %s", reports[0], reports[1])
	}

	// The Session path: same topology, fresh private cache, direct engine run.
	norm, err := byPreset.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := norm.SessionOptions(sim.NewCache())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reports[0], want) {
		t.Errorf("HTTP report diverges from Session path:\n http: %s\n  sim: %s", reports[0], want)
	}

	text := scrapeMetrics(t, ts)
	for _, kind := range []string{"ooo", "accel-tile"} {
		line := fmt.Sprintf(`mosaicd_tile_active_cycles_total{kind=%q}`, kind)
		found := false
		for _, l := range strings.Split(text, "\n") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(l, line+" "), "%f", &v); strings.HasPrefix(l, line+" ") && err == nil && v > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("metrics missing nonzero %s:\n%s", line, grepPrefix(text, "mosaicd_tile_"))
		}
	}
}

// TestConcurrentSubmissions drives the acceptance-scale load through the
// HTTP layer: >= 32 concurrent mixed-workload submissions, all reaching
// done, deduplicated through the shared cache (visible in /metrics).
func TestConcurrentSubmissions(t *testing.T) {
	cache := sim.NewCache()
	cache.SetMaxEntries(64)
	ts, _ := newTestServer(t, jobs.Options{Workers: 4, QueueDepth: 64, Cache: cache})

	names := []string{"sgemm", "spmv", "bfs"}
	const n = 32
	ids := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := jobs.Spec{Workload: names[i%len(names)], Scale: "tiny", Tiles: 1 + i%2}
			body, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				b, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("submit %d: %s: %s", i, resp.Status, b)
				return
			}
			var st jobs.Status
			if errs[i] = json.NewDecoder(resp.Body).Decode(&st); errs[i] == nil {
				ids[i] = st.ID
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	for i, id := range ids {
		if st := waitDone(t, ts, id, 120*time.Second); st.State != jobs.StateDone {
			t.Fatalf("job %d (%s) state = %s (%s)", i, id, st.State, st.Error)
		}
	}
	text := scrapeMetrics(t, ts)
	if !strings.Contains(text, fmt.Sprintf(`mosaicd_jobs_total{state="done"} %d`, n)) {
		t.Errorf("metrics missing %d done jobs:\n%s", n, grepPrefix(text, "mosaicd_jobs_total"))
	}
	hits := metricValue(t, text, "mosaicd_cache_hits_total")
	if hits == 0 {
		t.Errorf("cache hits = 0 over %d submissions of 6 shapes; dedup not visible in metrics", n)
	}
}

// TestEventStreamNDJSON reads a job's full event stream and checks its
// shape: lifecycle edges in order, the three stages with cache attribution,
// monotonic sequence numbers, and stream termination at the terminal state.
func TestEventStreamNDJSON(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{Workers: 1, QueueDepth: 4})
	st, _ := postJob(t, ts, jobs.Spec{Workload: "spmv", Scale: "tiny"})

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var evs []jobs.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(evs) < 5 { // queued, running, 3 stages, done
		t.Fatalf("only %d events: %+v", len(evs), evs)
	}
	for i, e := range evs {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d; stream skipped or reordered", i, e.Seq)
		}
	}
	if evs[0].Type != "state" || evs[0].State != jobs.StateQueued {
		t.Errorf("first event = %+v, want queued edge", evs[0])
	}
	if last := evs[len(evs)-1]; last.Type != "state" || last.State != jobs.StateDone {
		t.Errorf("last event = %+v, want done edge", last)
	}
	var stages []string
	for _, e := range evs {
		if e.Type == "stage" {
			stages = append(stages, e.Stage)
			if e.Stage == "artifact" && e.CacheHit == nil {
				t.Error("artifact stage event missing cacheHit attribution")
			}
		}
	}
	if fmt.Sprint(stages) != fmt.Sprint([]string{"artifact", "run", "report"}) {
		t.Errorf("stages = %v, want [artifact run report]", stages)
	}
	// Every finished run's stream carries the engine's terminal progress
	// update (it bypasses the runner's 100ms throttle), so stream consumers
	// always see the final cycle position.
	finals := 0
	for _, e := range evs {
		if e.Type == "progress" && e.Final {
			finals++
		}
	}
	if finals != 1 {
		t.Errorf("stream has %d final progress events, want exactly 1:\n%+v", finals, evs)
	}
}

// TestCancelReturnsBeforeStatusSettles pins the DELETE semantics: the
// response arrives while the job is still running; the context error
// surfaces in a later GET.
func TestCancelReturnsBeforeStatusSettles(t *testing.T) {
	started := make(chan struct{}, 1)
	runner := func(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
		started <- struct{}{}
		<-ctx.Done()
		time.Sleep(30 * time.Millisecond) // simulate mid-run unwinding
		return nil, ctx.Err()
	}
	ts, _ := newTestServer(t, jobs.Options{Workers: 1, QueueDepth: 1, Runner: runner})
	st, _ := postJob(t, ts, jobs.Spec{Workload: "sgemm", Scale: "tiny"})
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status = %s, want 202", resp.Status)
	}
	var at jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&at); err != nil {
		t.Fatal(err)
	}
	if at.State != jobs.StateRunning {
		t.Fatalf("DELETE response state = %s, want still running (cancel is asynchronous)", at.State)
	}
	final := waitDone(t, ts, st.ID, 5*time.Second)
	if final.State != jobs.StateCancelled {
		t.Fatalf("final state = %s, want cancelled", final.State)
	}
	if !strings.Contains(final.Error, "context canceled") {
		t.Errorf("final error = %q, want the context error surfaced", final.Error)
	}
}

func TestAdmissionAndErrorMapping(t *testing.T) {
	started := make(chan struct{}, 1)
	runner := func(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts, _ := newTestServer(t, jobs.Options{Workers: 1, QueueDepth: 1, Runner: runner})

	// Fill the worker and the queue.
	if _, resp := postJob(t, ts, jobs.Spec{Workload: "sgemm", Scale: "tiny"}); resp.StatusCode != 201 {
		t.Fatalf("first submit: %s", resp.Status)
	}
	<-started
	if _, resp := postJob(t, ts, jobs.Spec{Workload: "spmv", Scale: "tiny"}); resp.StatusCode != 201 {
		t.Fatalf("second submit: %s", resp.Status)
	}
	// Shed: 429 with Retry-After.
	_, resp := postJob(t, ts, jobs.Spec{Workload: "bfs", Scale: "tiny"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submit status = %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}

	// Unknown job: 404.
	r, err := http.Get(ts.URL + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %s, want 404", r.Status)
	}

	// Invalid spec: 400 with a did-you-mean suggestion.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"workload":"sgem"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec status = %s, want 400", resp2.Status)
	}
	if !strings.Contains(string(b), `did you mean \"sgemm\"`) && !strings.Contains(string(b), "did you mean") {
		t.Errorf("bad spec body missing did-you-mean: %s", b)
	}

	// Unknown field: 400 (DisallowUnknownFields).
	resp3, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"workload":"sgemm","tils":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %s, want 400", resp3.Status)
	}
}

func TestListElidesReports(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{Workers: 1, QueueDepth: 4})
	st, _ := postJob(t, ts, jobs.Spec{Workload: "sgemm", Scale: "tiny"})
	waitDone(t, ts, st.ID, 60*time.Second)

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v, want the one submitted job", list)
	}
	if list[0].Report != nil {
		t.Error("list entry carries a report; lists must stay light")
	}
	if full := getStatus(t, ts, st.ID); len(full.Report) == 0 {
		t.Error("single-job GET lost the report")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	ts, m := newTestServer(t, jobs.Options{Workers: 1, QueueDepth: 4})
	st, _ := postJob(t, ts, jobs.Spec{Workload: "sgemm", Scale: "tiny"})
	waitDone(t, ts, st.ID, 60*time.Second)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(b), `"status": "ok"`) {
		t.Errorf("healthz = %s %s", resp.Status, b)
	}

	text := scrapeMetrics(t, ts)
	for _, want := range []string{
		"mosaicd_jobs_submitted_total 1",
		`mosaicd_jobs_total{state="done"} 1`,
		"mosaicd_queue_depth",
		"mosaicd_jobs_inflight",
		`mosaicd_stage_seconds_count{stage="run"} 1`,
		"mosaicd_cache_misses_total",
		"mosaicd_cache_evictions_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	// Draining flips healthz.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(b2), "draining") {
		t.Errorf("healthz after shutdown = %s, want draining", b2)
	}
	// And submissions map to 503.
	_, resp3 := postJob(t, ts, jobs.Spec{Workload: "sgemm", Scale: "tiny"})
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %s, want 503", resp3.Status)
	}
}

// TestReplayMetricsAndReportParity submits the same job twice with replay
// enabled: the first run records a timing schedule, the second is answered
// from it. The two reports must be byte-identical (the replay engine's
// bit-exactness contract surfaced at the API seam), and the replay and
// artifact-cache series must show up in /metrics.
func TestReplayMetricsAndReportParity(t *testing.T) {
	cache := sim.NewCache()
	ts, _ := newTestServer(t, jobs.Options{Workers: 1, QueueDepth: 8, Cache: cache, Replay: true})

	spec := jobs.Spec{Workload: "sgemm-accel", Scale: "tiny"}
	st1, _ := postJob(t, ts, spec)
	first := waitDone(t, ts, st1.ID, 120*time.Second)
	if first.State != jobs.StateDone {
		t.Fatalf("first job state = %s (%s)", first.State, first.Error)
	}
	st2, _ := postJob(t, ts, spec)
	second := waitDone(t, ts, st2.ID, 120*time.Second)
	if second.State != jobs.StateDone {
		t.Fatalf("second job state = %s (%s)", second.State, second.Error)
	}
	r1 := getStatus(t, ts, st1.ID).Report
	r2 := getStatus(t, ts, st2.ID).Report
	if !bytes.Equal(r1, r2) {
		t.Errorf("replayed report differs from recorded run:\nfirst:  %s\nsecond: %s", r1, r2)
	}

	text := scrapeMetrics(t, ts)
	if v := metricValue(t, text, "mosaicd_replay_hits_total"); v < 1 {
		t.Errorf("mosaicd_replay_hits_total = %v, want >= 1", v)
	}
	if v := metricValue(t, text, "mosaicd_schedules_recorded_total"); v < 1 {
		t.Errorf("mosaicd_schedules_recorded_total = %v, want >= 1", v)
	}
	if v := metricValue(t, text, "mosaicd_replay_hit_ratio"); v <= 0 {
		t.Errorf("mosaicd_replay_hit_ratio = %v, want > 0", v)
	}
	for _, want := range []string{
		"mosaicd_artifact_cache_hits_total",
		"mosaicd_artifact_cache_misses_total",
		"mosaicd_artifact_cache_evictions_total",
		"mosaicd_replay_fallbacks_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepPrefix(text, "mosaicd_"))
		}
	}
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Errorf("metrics Content-Type = %q, want Prometheus text 0.0.4", got)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts an unlabelled sample's value from exposition text.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %f", &v); err == nil && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

func grepPrefix(text, prefix string) string {
	var sb strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			sb.WriteString(line + "\n")
		}
	}
	return sb.String()
}
