// Package server exposes the job manager (internal/jobs) as an HTTP/JSON
// API — the network face of mosaicd. The surface is small and versioned:
//
//	POST   /v1/jobs             submit a Spec            → 201 Status (429 when shed, 503 draining)
//	GET    /v1/jobs             list retained jobs       → 200 [Status] (reports elided)
//	GET    /v1/jobs/{id}        status + final report    → 200 Status
//	GET    /v1/jobs/{id}/events NDJSON live event stream → 200 stream of jobs.Event
//	DELETE /v1/jobs/{id}        cancel                   → 202 Status (returns before the ctx error lands)
//	GET    /healthz             readiness probe          → 200 while accepting, 503 when shedding; body carries queue depth + drain state
//	GET    /metrics             Prometheus text exposition
//
// Submissions may carry an X-Mosaic-Tenant header naming the client tenant
// for quota accounting (a tenant in the Spec body wins). In a fleet, the
// coordinator mounts internal/cluster's /cluster/v1/* endpoints beside this
// surface.
//
// Handlers hold no state of their own: every response is a snapshot from
// the manager, and event streams are driven by the job's own notification
// channel, so a stream costs one goroutine and no polling.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"mosaicsim/internal/jobs"
	"mosaicsim/internal/metrics"
)

// Server routes the API onto a job manager and a metrics registry.
type Server struct {
	mgr *jobs.Manager
	reg *metrics.Registry
	mux *http.ServeMux
}

// New builds the server. reg may be nil to use the manager's own registry.
func New(mgr *jobs.Manager, reg *metrics.Registry) *Server {
	if reg == nil {
		reg = mgr.Registry()
	}
	s := &Server{mgr: mgr, reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// writeErr maps manager errors onto status codes: shed submissions (queue
// full or tenant quota) are 429 with a Retry-After derived from the live
// backlog and observed run times (jobs.Manager.RetryAfter — a hardcoded 1s
// here just synchronized retry storms under overload), drain is 503 with
// the same hint, unknown IDs 404, anything else from validation is 400.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrTenantQuota):
		w.Header().Set("Retry-After", strconv.Itoa(s.mgr.RetryAfter()))
		code = http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrShuttingDown):
		w.Header().Set("Retry-After", strconv.Itoa(s.mgr.RetryAfter()))
		code = http.StatusServiceUnavailable
	case errors.Is(err, jobs.ErrNotFound):
		code = http.StatusNotFound
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeErr(w, fmt.Errorf("bad submission body: %w", err))
		return
	}
	// The tenant rides the X-Mosaic-Tenant header (a proxy-settable
	// identity); an explicit tenant in the body wins.
	if spec.Tenant == "" {
		spec.Tenant = r.Header.Get("X-Mosaic-Tenant")
	}
	j, err := s.mgr.Submit(spec)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusCreated, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	js := s.mgr.List()
	out := make([]jobs.Status, len(js))
	for i, j := range js {
		st := j.Status()
		st.Report = nil // list stays light; fetch one job for its report
		out[i] = st
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	// 202: cancellation is asynchronous by design — a running job's
	// context error surfaces in its status after this response returns.
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleEvents streams the job's event log as NDJSON: everything logged so
// far, then live events as they happen, until the job is terminal (stream
// ends) or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		evs, more, done := j.EventsSince(next)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return // client gone
			}
		}
		next += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

// healthz is the readiness body: the drain status plus the live admission
// snapshot, so load balancers can route on queue depth, not just liveness.
type healthz struct {
	Status string `json:"status"`
	jobs.QueueStats
}

// handleHealthz doubles as a readiness probe: 200 while the manager accepts
// submissions, 503 once it would shed them (draining or queue at capacity),
// with the queue snapshot in the body either way.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.mgr.QueueStats()
	status := "ok"
	if st.Draining {
		status = "draining"
	}
	code := http.StatusOK
	if !st.Accepting {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthz{Status: status, QueueStats: st})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}
