// Heterosoc: a §VII-B style heterogeneous SoC study. The same dense
// matrix-multiply runs three ways — on in-order cores, on an out-of-order
// core, and offloaded to the fixed-function SGEMM accelerator — showing the
// plug-and-play tile composition the paper's Interleaver enables. Each
// system is one sim.Session over a shared artifact cache, so the software
// kernel compiles and traces once per tile count no matter how many systems
// replay it.
//
// Run with: go run ./examples/heterosoc
package main

import (
	"context"
	"fmt"
	"log"

	"mosaicsim/internal/accel"
	"mosaicsim/internal/config"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/workloads"
)

func main() {
	sw := workloads.SGEMM()      // tiled SPMD software kernel
	hw := workloads.SGEMMAccel() // same product via the accelerator API

	// Accelerator model: the §VI-A SGEMM accelerator at its largest design
	// point, evaluated with the generic closed-form performance model.
	dp := accel.PLMSweep()[3]
	sgemmAcc := accel.NewSGEMM(dp)
	models := map[string]soc.AccelModel{
		"acc_sgemm": &accel.Model{Acc: sgemmAcc, Mode: accel.ModeClosedForm, SystemMHz: 2000, MaxMemGBs: 24},
	}
	fmt.Printf("SGEMM accelerator design point: PLM %d KB, %d MACs/cycle, %.0fk um^2, %.2f W\n\n",
		dp.PLMBytes/1024, dp.Lanes, sgemmAcc.AreaUM2()/1000, sgemmAcc.PowerW)

	// Each system is one declarative topology: a tile list by registered
	// kind, composed against the same memory hierarchy.
	systems := []struct {
		name string
		w    *workloads.Workload
		tile config.TileDef
	}{
		{"1x in-order", sw, config.TileDef{Kind: "inorder"}},
		{"4x in-order", sw, config.TileDef{Kind: "inorder", Count: 4}},
		{"1x out-of-order", sw, config.TileDef{Kind: "ooo"}},
		{"accelerator SoC", hw, config.TileDef{Kind: "inorder"}},
	}

	ctx := context.Background()
	var baseline int64
	for _, s := range systems {
		sess, err := sim.NewSession(sim.Options{
			Workload: s.w,
			Scale:    workloads.Small,
			Config: &config.SystemConfig{
				Name:  s.name,
				Tiles: []config.TileDef{s.tile},
				Mem:   config.TableIIMem(),
			},
			Accels: models,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := sess.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = r.Cycles
		}
		fmt.Printf("%-16s %10d cycles   speedup %6.1fx   IPC %5.2f   accel calls %d\n",
			s.name, r.Cycles, float64(baseline)/float64(r.Cycles), r.IPC, r.AccelCalls)
	}
	fmt.Println("\nThe accelerator dominates the compute-bound dense kernel (Fig. 12's ~45x bar).")
}
