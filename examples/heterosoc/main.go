// Heterosoc: a §VII-B style heterogeneous SoC study. The same dense
// matrix-multiply runs three ways — on in-order cores, on an out-of-order
// core, and offloaded to the fixed-function SGEMM accelerator — showing the
// plug-and-play tile composition the paper's Interleaver enables.
//
// Run with: go run ./examples/heterosoc
package main

import (
	"fmt"
	"log"

	"mosaicsim/internal/accel"
	"mosaicsim/internal/config"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/workloads"
)

func main() {
	sw := workloads.SGEMM()      // tiled SPMD software kernel
	hw := workloads.SGEMMAccel() // same product via the accelerator API

	// Accelerator model: the §VI-A SGEMM accelerator at its largest design
	// point, evaluated with the generic closed-form performance model.
	dp := accel.PLMSweep()[3]
	sgemmAcc := accel.NewSGEMM(dp)
	models := map[string]soc.AccelModel{
		"acc_sgemm": &accel.Model{Acc: sgemmAcc, Mode: accel.ModeClosedForm, SystemMHz: 2000, MaxMemGBs: 24},
	}
	fmt.Printf("SGEMM accelerator design point: PLM %d KB, %d MACs/cycle, %.0fk um^2, %.2f W\n\n",
		dp.PLMBytes/1024, dp.Lanes, sgemmAcc.AreaUM2()/1000, sgemmAcc.PowerW)

	systems := []struct {
		name string
		w    *workloads.Workload
		core config.CoreConfig
		n    int
	}{
		{"1x in-order", sw, config.InOrderCore(), 1},
		{"4x in-order", sw, config.InOrderCore(), 4},
		{"1x out-of-order", sw, config.OutOfOrderCore(), 1},
		{"accelerator SoC", hw, config.InOrderCore(), 1},
	}

	var baseline int64
	for _, s := range systems {
		g, tr, err := s.w.Trace(s.n, workloads.Small)
		if err != nil {
			log.Fatal(err)
		}
		cfg := &config.SystemConfig{
			Name:  s.name,
			Cores: []config.CoreSpec{{Core: s.core, Count: s.n}},
			Mem:   config.TableIIMem(),
		}
		sys, err := soc.NewSPMD(cfg, g, tr, models)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(0); err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = sys.Cycles
		}
		r := sys.Result()
		fmt.Printf("%-16s %10d cycles   speedup %6.1fx   IPC %5.2f   accel calls %d\n",
			s.name, sys.Cycles, float64(baseline)/float64(sys.Cycles), r.IPC, r.AccelCalls)
	}
	fmt.Println("\nThe accelerator dominates the compute-bound dense kernel (Fig. 12's ~45x bar).")
}
