// Quickstart: the complete MosaicSim-Go pipeline on the paper's running
// example (Fig. 3): a vector-add kernel is compiled from mini-C to IR, its
// static DDG is built, the Dynamic Trace Generator executes it natively to
// collect control-flow and memory traces, and the timing simulator replays
// the traces on an out-of-order core.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mosaicsim"
)

const src = `
// The paper's Fig. 3 example, generalized to n elements.
void kernel(double* A, double* B, double* C, long n) {
  for (long i = 0; i < n; i++) {
    C[i] = A[i] + B[i];
  }
}
`

func main() {
	// 1. Compile mini-C to the SSA IR (the LLVM-IR stand-in).
	mod, err := mosaicsim.Compile(src, "vecadd")
	if err != nil {
		log.Fatal(err)
	}
	k, err := mosaicsim.KernelOf(mod, "kernel")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== kernel IR ==")
	fmt.Println(k.Fn.String())
	s := k.Graph.Stats()
	fmt.Printf("static DDG: %d blocks, %d nodes, %d intra + %d cross data edges\n\n",
		s.Blocks, s.Nodes, s.IntraEdges, s.CrossEdges)

	// 2. Set up simulated memory and run the Dynamic Trace Generator.
	const n = 1024
	mem := mosaicsim.NewMemory(1 << 22)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(2 * i)
	}
	pa := mem.AllocF64(a)
	pb := mem.AllocF64(b)
	pc := mem.Alloc(n*8, 64)
	args := []uint64{mosaicsim.ArgPtr(pa), mosaicsim.ArgPtr(pb), mosaicsim.ArgPtr(pc), mosaicsim.ArgI64(n)}
	tr, err := k.Trace(mem, args, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic trace: %d instructions, %d memory events, %d basic blocks\n",
		tr.TotalDynInstrs(), tr.TotalMemEvents(), len(tr.Tiles[0].BBPath))

	// The functional execution really computed the result.
	fmt.Printf("C[10] = %.0f (want 30)\n\n", mem.ReadF64(pc+10*8))

	// 3. Replay the trace on the Table II out-of-order core.
	cfg := &mosaicsim.SystemConfig{
		Name:  "quickstart",
		Cores: []mosaicsim.CoreSpec{{Core: mosaicsim.OutOfOrderCore(), Count: 1}},
		Mem:   mosaicsim.TableIIMem(),
	}
	res, err := mosaicsim.Simulate(cfg, k, tr, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: %d cycles, IPC %.2f, L1 hit rate %.1f%%, %d DRAM line fills, %.1f uJ\n",
		res.Cycles, res.IPC, 100*res.L1.HitRate(), res.DRAM.Reads, res.EnergyPJ/1e6)

	// 4. The same pipeline as one cancellable Session: an ad-hoc workload
	// wraps the kernel source plus the input setup, and the engine owns
	// compile → DDG → trace → build → run under a context.
	w := &mosaicsim.Workload{
		Name: "vecadd",
		Src:  src,
		Setup: func(mem *mosaicsim.Memory, _ mosaicsim.Scale) mosaicsim.Instance {
			pa := mem.AllocF64(a)
			pb := mem.AllocF64(b)
			pc := mem.Alloc(n*8, 64)
			return mosaicsim.Instance{Args: []uint64{pa, pb, pc, n}}
		},
	}
	sess, err := mosaicsim.NewSession(mosaicsim.SessionOptions{Workload: w, Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sres, err := sess.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session:   %d cycles, IPC %.2f (same engine the CLI and harness drive)\n",
		sres.Cycles, sres.IPC)
}
