// DNN: the §VII-C TensorFlow/Keras performance-modeling case study. Three
// deep-learning applications are described as layer graphs; their training
// steps are estimated on an out-of-order server core and on an SoC with
// eight accelerator instances, and the energy-delay-product improvements are
// compared (Fig. 14).
//
// Run with: go run ./examples/dnn
package main

import (
	"context"
	"fmt"
	"log"

	"mosaicsim/internal/accel"
	"mosaicsim/internal/config"
	"mosaicsim/internal/keras"
	"mosaicsim/internal/soc"
)

func main() {
	core := keras.DefaultOoOCore()
	socp := keras.DefaultSoC(8)
	const batch = 32

	fmt.Printf("%-10s %14s %14s %14s %16s\n",
		"app", "core cycles", "SoC cycles", "speedup", "EDP improvement")
	for _, m := range keras.Apps() {
		base := m.EstimateOnCore(core, batch)
		opt := m.EstimateOnSoC(socp, batch)
		// Express both in wall-clock-comparable terms: the SoC runs at the
		// accelerator clock, the core at its own.
		coreSec := float64(base.Cycles) / (float64(core.Cfg.ClockMHz) * 1e6)
		socSec := float64(opt.Cycles) / (float64(socp.ClockMHz) * 1e6)
		fmt.Printf("%-10s %14d %14d %13.1fx %15.1fx\n",
			m.Name, base.Cycles, opt.Cycles, coreSec/socSec,
			m.EDPImprovement(core, socp, batch))
	}

	fmt.Println("\nPer-layer breakdown of ConvNet's training step (why its gain is modest):")
	m := keras.ConvNet()
	in := m.Input
	var accMACs, hostMACs int64
	for _, l := range m.Layers {
		f, b := l.Fwd(in), l.Bwd(in)
		if l.Accelerated(false) {
			accMACs += f.MACs
		} else {
			hostMACs += f.MACs
		}
		if l.Accelerated(true) {
			accMACs += b.MACs
		} else {
			hostMACs += b.MACs
		}
		in = l.Out(in)
	}
	tot := accMACs + hostMACs
	fmt.Printf("  accelerated work:   %5.1f%% of MACs\n", 100*float64(accMACs)/float64(tot))
	fmt.Printf("  host-side backprop: %5.1f%% of MACs (no conv-backprop accelerator, §VII-C)\n",
		100*float64(hostMACs)/float64(tot))

	// The paper's actual mechanism, end to end: lower a (reduced) model to a
	// kernel whose accelerator invocations are traced and simulated through
	// the full pipeline.
	fmt.Println("\nFull-pipeline simulation of a reduced RecSys training step (lowered kernel):")
	lite := &keras.Model{
		Name:  "RecSys-lite",
		Input: keras.Shape{C: 128},
		Layers: []keras.Layer{
			keras.Dense{Units: 128},
			keras.Elementwise{Kind: "relu", OpsPerElem: 1},
			keras.Dense{Units: 64},
		},
	}
	host := config.OutOfOrderCore()
	dp := accel.DesignPoint{PLMBytes: 256 << 10, Lanes: 16}
	models := map[string]soc.AccelModel{}
	for _, name := range []string{"acc_sgemm", "acc_elementwise"} {
		models[name] = &accel.Model{Acc: accel.ByName(name, dp), Mode: accel.ModeClosedForm, SystemMHz: host.ClockMHz, MaxMemGBs: 24}
	}
	ctx := context.Background()
	withAcc, err := lite.SimulateTrainingStep(ctx, 4, true, host, models)
	if err != nil {
		log.Fatal(err)
	}
	hostOnly, err := lite.SimulateTrainingStep(ctx, 4, false, host, models)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  host-only: %d cycles; with accelerators: %d cycles (%d invocations) -> %.1fx\n",
		hostOnly.Cycles, withAcc.Cycles, withAcc.AccelCalls,
		float64(hostOnly.Cycles)/float64(withAcc.Cycles))
}
