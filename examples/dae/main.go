// DAE: the §VII-A Decoupled Access/Execute case study end to end. The
// bipartite graph projection kernel is sliced by the DeSC-style compiler
// pass into access and execute slices; the heterogeneous pair system is
// traced and simulated against single-core and homogeneous baselines at
// equal silicon area. Every measurement is a sim.Session — the SPMD
// baselines and the DAE pairs differ only in Options.Slicing — and the
// sessions share compilations, slices, and traces through the engine's
// artifact cache.
//
// Run with: go run ./examples/dae
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	"mosaicsim/internal/config"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/workloads"
)

func main() {
	ctx := context.Background()
	w := workloads.Projection()
	mem := config.TableIIMem()
	ino := config.InOrderCore()
	ooo := config.OutOfOrderCore()
	// The DAE tiles carry the DeSC structures, which extend the little
	// core's run-ahead (same overrides the Fig. 11 experiment uses).
	desc := json.RawMessage(config.DeSCOverrides)

	// 1. Compiler pass: a DAE session's artifact carries the access and
	// execute slices next to the pair trace.
	probe, err := sim.NewSession(sim.Options{
		Workload: w, Scale: workloads.Small, Slicing: sim.SliceDAE, Tiles: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	art, err := probe.Artifact(ctx)
	if err != nil {
		log.Fatal(err)
	}
	s := art.Slices
	fmt.Printf("sliced @%s: %d communicated loads, %d communicated store values\n",
		art.Fn.Ident, s.CommLoads, s.CommStores)
	fmt.Printf("access slice: %d instructions; execute slice: %d instructions\n\n",
		s.Access.NumInstrs(), s.Execute.NumInstrs())

	// Homogeneous SPMD systems, declared by tile kind.
	homo := func(kind string, n int) int64 {
		sess, err := sim.NewSession(sim.Options{
			Workload: w, Scale: workloads.Small,
			Config: &config.SystemConfig{
				Name: "homo", Tiles: []config.TileDef{{Kind: kind, Count: n}}, Mem: mem,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		return res.Cycles
	}

	// DAE pair systems: the access/execute roles on the tiles both select
	// the slices each tile replays and switch the session into DAE slicing —
	// no separate Slicing option. The engine validates the sliced kernels'
	// results during tracing, so a wrong transformation fails here rather
	// than producing plausible timing.
	daeRun := func(pairs int) int64 {
		var tiles []config.TileDef
		for i := 0; i < pairs; i++ {
			tiles = append(tiles,
				config.TileDef{Kind: "inorder", Role: config.RoleAccess, Overrides: desc},
				config.TileDef{Kind: "inorder", Role: config.RoleExecute, Overrides: desc},
			)
		}
		sess, err := sim.NewSession(sim.Options{
			Workload: w, Scale: workloads.Small,
			Config: &config.SystemConfig{Name: "dae", Tiles: tiles, Mem: mem},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		return res.Cycles
	}

	base := homo("inorder", 1)
	rows := []struct {
		name   string
		cycles int64
		area   float64
	}{
		{"1 InO core", base, ino.AreaMM2},
		{"1 OoO core", homo("ooo", 1), ooo.AreaMM2},
		{"2 InO cores (homogeneous)", homo("inorder", 2), 2 * ino.AreaMM2},
		{"1 DAE pair (2 InO)", daeRun(1), 2 * ino.AreaMM2},
		{"8 InO cores (homogeneous)", homo("inorder", 8), 8 * ino.AreaMM2},
		{"4 DAE pairs (8 InO)", daeRun(4), 8 * ino.AreaMM2},
	}
	fmt.Printf("%-28s %12s %9s %8s\n", "system", "cycles", "speedup", "mm^2")
	for _, r := range rows {
		fmt.Printf("%-28s %12d %8.2fx %8.2f\n", r.name, r.cycles, float64(base)/float64(r.cycles), r.area)
	}
	fmt.Println("\nAt OoO-equal area (~8.4 mm^2), heterogeneous DAE parallelism outperforms")
	fmt.Println("both the big out-of-order core and homogeneous little-core parallelism (Fig. 11).")
}
