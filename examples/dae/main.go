// DAE: the §VII-A Decoupled Access/Execute case study end to end. The
// bipartite graph projection kernel is sliced by the DeSC-style compiler
// pass into access and execute slices; the heterogeneous pair system is
// traced and simulated against single-core and homogeneous baselines at
// equal silicon area.
//
// Run with: go run ./examples/dae
package main

import (
	"fmt"
	"log"

	"mosaicsim/internal/config"
	"mosaicsim/internal/dae"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/workloads"
)

func main() {
	w := workloads.Projection()
	f, err := w.Kernel()
	if err != nil {
		log.Fatal(err)
	}

	// 1. Compiler pass: slice into access and execute.
	s, err := dae.Slice(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sliced @%s: %d communicated loads, %d communicated store values\n",
		f.Ident, s.CommLoads, s.CommStores)
	fmt.Printf("access slice: %d instructions; execute slice: %d instructions\n\n",
		s.Access.NumInstrs(), s.Execute.NumInstrs())

	mem := config.TableIIMem()
	ino := config.InOrderCore()
	ooo := config.OutOfOrderCore()
	// The DAE cores carry the DeSC structures, which extend the little
	// core's run-ahead (same configuration the Fig. 11 experiment uses).
	daeCore := ino
	daeCore.DecoupledSupply = true
	daeCore.WindowSize = 64
	daeCore.LSQSize = 12

	// Homogeneous systems.
	homo := func(core config.CoreConfig, n int) int64 {
		g, tr, err := w.Trace(n, workloads.Small)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := soc.NewSPMD(&config.SystemConfig{
			Name: "homo", Cores: []config.CoreSpec{{Core: core, Count: n}}, Mem: mem,
		}, g, tr, nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(0); err != nil {
			log.Fatal(err)
		}
		return sys.Cycles
	}

	// DAE pair systems: even tiles access, odd tiles execute.
	daeRun := func(pairs int) int64 {
		var fns []*ir.Function
		for i := 0; i < pairs; i++ {
			fns = append(fns, s.Access, s.Execute)
		}
		m := interp.NewMemory(workloads.MemBytes)
		inst := w.Setup(m, workloads.Small)
		res, err := interp.RunTiles(fns, m, inst.Args, interp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if err := inst.Check(m); err != nil {
			log.Fatalf("DAE slices computed a wrong result: %v", err)
		}
		ag, eg := ddg.Build(s.Access), ddg.Build(s.Execute)
		var tiles []soc.TileSpec
		for i := 0; i < pairs; i++ {
			tiles = append(tiles,
				soc.TileSpec{Cfg: daeCore, Graph: ag, TT: res.Trace.Tiles[2*i]},
				soc.TileSpec{Cfg: daeCore, Graph: eg, TT: res.Trace.Tiles[2*i+1]})
		}
		sys, err := soc.New("dae", tiles, mem, nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(0); err != nil {
			log.Fatal(err)
		}
		return sys.Cycles
	}

	base := homo(ino, 1)
	rows := []struct {
		name   string
		cycles int64
		area   float64
	}{
		{"1 InO core", base, ino.AreaMM2},
		{"1 OoO core", homo(ooo, 1), ooo.AreaMM2},
		{"2 InO cores (homogeneous)", homo(ino, 2), 2 * ino.AreaMM2},
		{"1 DAE pair (2 InO)", daeRun(1), 2 * ino.AreaMM2},
		{"8 InO cores (homogeneous)", homo(ino, 8), 8 * ino.AreaMM2},
		{"4 DAE pairs (8 InO)", daeRun(4), 8 * ino.AreaMM2},
	}
	fmt.Printf("%-28s %12s %9s %8s\n", "system", "cycles", "speedup", "mm^2")
	for _, r := range rows {
		fmt.Printf("%-28s %12d %8.2fx %8.2f\n", r.name, r.cycles, float64(base)/float64(r.cycles), r.area)
	}
	fmt.Println("\nAt OoO-equal area (~8.4 mm^2), heterogeneous DAE parallelism outperforms")
	fmt.Println("both the big out-of-order core and homogeneous little-core parallelism (Fig. 11).")
}
