// DSE: the §IV-B / Fig. 10 accelerator design-space exploration. HLS-style
// design points (PLM size sweep) of the three §VI-A accelerators are
// evaluated across workload sizes at all three model fidelities — pipeline
// ("RTL simulation"), generic closed-form model, and FPGA emulation — and
// the model accuracies are reported.
//
// Run with: go run ./examples/dse
package main

import (
	"fmt"
	"math"

	"mosaicsim/internal/accel"
)

func main() {
	for _, name := range []string{"acc_sgemm", "acc_histo", "acc_elementwise"} {
		fmt.Printf("== %s ==\n", name)
		fmt.Printf("%8s %12s | %-46s\n", "PLM", "area um^2", "execution time (Mcycles) per workload size")
		fmt.Printf("%8s %12s | %10s %10s %10s %10s\n", "", "", "256KB", "1MB", "4MB", "16MB")
		for _, dp := range accel.PLMSweep() {
			a := accel.ByName(name, dp)
			fmt.Printf("%6dKB %12.0f |", dp.PLMBytes/1024, a.AreaUM2())
			for _, wl := range accel.WorkloadSweep() {
				cycles, err := a.SimulatePipeline(params(name, wl))
				if err != nil {
					fmt.Printf(" %10s", "-")
					continue
				}
				fmt.Printf(" %10.3f", float64(cycles)/1e6)
			}
			fmt.Println()
		}

		// Fig. 10d: closed-form model accuracy.
		var rtl, fpga []float64
		for _, dp := range accel.PLMSweep() {
			a := accel.ByName(name, dp)
			for _, wl := range accel.WorkloadSweep() {
				p := params(name, wl)
				cf, _ := a.ClosedForm(p)
				pipe, _ := a.SimulatePipeline(p)
				emu, _ := a.EmulateFPGA(p)
				rtl = append(rtl, ratio(cf, pipe))
				fpga = append(fpga, ratio(cf, emu))
			}
		}
		fmt.Printf("generic model accuracy: %.1f%% vs RTL pipeline, %.1f%% vs FPGA emulation\n\n",
			100*mean(rtl), 100*mean(fpga))
	}
	fmt.Println("Larger PLMs trade area for fewer, larger DMA chunks (Fig. 10a-c);")
	fmt.Println("the closed-form model tracks RTL-level simulation within a few percent (Fig. 10d).")
}

func params(name string, totalBytes int64) []int64 {
	switch name {
	case "acc_sgemm":
		d := int64(math.Sqrt(float64(totalBytes) / 12))
		return []int64{0, 0, 0, d, d, d}
	case "acc_histo":
		return []int64{0, totalBytes / 4, 0, 256}
	default:
		return []int64{0, 0, 0, totalBytes / 12}
	}
}

func ratio(model, ref int64) float64 {
	if ref == 0 {
		return 0
	}
	r := float64(model) / float64(ref)
	if r > 1 {
		return 1 / r
	}
	return r
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
