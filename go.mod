module mosaicsim

go 1.22
