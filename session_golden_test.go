package mosaicsim

// Golden seam test for the driver migration onto the session engine: the
// Session path must produce a byte-identical JSON report to the legacy
// inline wiring (workload trace → soc.NewSPMD → Run → Result) that
// `mosaicsim -workload sgemm -json` used before internal/sim existed.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"mosaicsim/internal/config"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/workloads"
)

// cliConfig mirrors what cmd/mosaicsim builds for `-workload sgemm` defaults
// (one out-of-order tile over the Table II hierarchy).
func cliConfig(name string, tiles int) *config.SystemConfig {
	return &config.SystemConfig{
		Name:  fmt.Sprintf("%s-%dxooo", name, tiles),
		Cores: []config.CoreSpec{{Core: config.OutOfOrderCore(), Count: tiles}},
		Mem:   config.TableIIMem(),
	}
}

func encodeResult(t *testing.T, r soc.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSessionGoldenVsLegacyWiring(t *testing.T) {
	const tiles = 1
	w, err := workloads.Resolve("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	accels := workloads.DefaultAccelModels(config.OutOfOrderCore().ClockMHz)

	// Legacy wiring: exactly what the CLI inlined before the migration.
	g, tr, err := w.Trace(tiles, workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	legacySys, err := soc.NewSPMD(cliConfig(w.Name, tiles), g, tr, accels)
	if err != nil {
		t.Fatal(err)
	}
	if err := legacySys.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	legacy := encodeResult(t, legacySys.Result())

	// Session path: what the CLI runs now.
	s, err := sim.NewSession(sim.Options{
		Workload: w,
		Scale:    workloads.Tiny,
		Config:   cliConfig(w.Name, tiles),
		Accels:   accels,
		Cache:    sim.NewCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	session := encodeResult(t, res)

	if !bytes.Equal(legacy, session) {
		t.Errorf("session JSON diverged from the legacy wiring:\n--- legacy ---\n%s\n--- session ---\n%s", legacy, session)
	}

	// The report accessor agrees with the returned result.
	rep, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(session, encodeResult(t, rep)) {
		t.Error("Session.Report disagrees with Session.Run's result")
	}
}

// TestSessionGoldenMultiTile repeats the seam check on a 4-tile SPMD system,
// where trace interleaving and NoC-free fabric wiring could plausibly
// diverge between the two paths.
func TestSessionGoldenMultiTile(t *testing.T) {
	const tiles = 4
	w, err := workloads.Resolve("spmv")
	if err != nil {
		t.Fatal(err)
	}
	g, tr, err := w.Trace(tiles, workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	legacySys, err := soc.NewSPMD(cliConfig(w.Name, tiles), g, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := legacySys.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	s, err := sim.NewSession(sim.Options{
		Workload: w,
		Scale:    workloads.Tiny,
		Config:   cliConfig(w.Name, tiles),
		Cache:    sim.NewCache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if legacy, session := encodeResult(t, legacySys.Result()), encodeResult(t, res); !bytes.Equal(legacy, session) {
		t.Errorf("4-tile session JSON diverged from the legacy wiring:\n--- legacy ---\n%s\n--- session ---\n%s", legacy, session)
	}
}
