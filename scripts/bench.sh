#!/usr/bin/env bash
# bench.sh — run the benchmark suite and archive the results as JSON.
#
# Usage:
#   scripts/bench.sh [bench-regex] [output.json]
#
# Runs `go test -bench` with -benchmem at the repo root (the paper-artifact
# benchmarks live there; they run at Tiny workload scale), converts the text
# output with cmd/benchjson, and writes BENCH_<date>.json (or the given
# output path). The raw text output is echoed to stderr so interactive runs
# still show progress.
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${1:-.}"
OUT="${2:-BENCH_$(date -u +%F).json}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run='^$' -bench="$PATTERN" -benchmem . | tee "$RAW" >&2
go run ./cmd/benchjson -in "$RAW" -o "$OUT"
echo "wrote $OUT" >&2
