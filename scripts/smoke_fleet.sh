#!/usr/bin/env bash
# smoke_fleet.sh — end-to-end smoke test of a mosaicd fleet.
#
# Usage:
#   scripts/smoke_fleet.sh [base-port]
#
# Builds mosaicd, starts a coordinator (durable, -data-dir) plus a worker,
# and walks the fleet serving path with curl: submit a batch through the
# coordinator, wait until a job is running on the worker, SIGKILL the worker
# mid-run, assert the lease expires and the job requeues to a second worker,
# every job completes with a report, the fleet metrics show the leases, both
# survivors drain cleanly on SIGTERM — and a restarted coordinator serves
# the finished jobs back from disk. Any failure exits non-zero.
set -euo pipefail
cd "$(dirname "$0")/.."

# Body assertions use `grep -q <<<"$VAR"`, never `echo "$VAR" | grep -q`:
# grep -q exits on first match, and under pipefail the echo side's SIGPIPE
# (exit 141) would fail the pipeline even though the pattern matched.

PORT="${1:-18474}"
W1_PORT=$((PORT + 1))
W2_PORT=$((PORT + 2))
BASE="http://127.0.0.1:${PORT}"
BIN="$(mktemp -d)/mosaicd"
DATA="$(mktemp -d)"
CLOG="$(mktemp)" W1LOG="$(mktemp)" W2LOG="$(mktemp)"

COORD_PID="" W1_PID="" W2_PID=""
cleanup() {
  for pid in "$COORD_PID" "$W1_PID" "$W2_PID"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  rm -f "$CLOG" "$W1LOG" "$W2LOG"
  rm -rf "$(dirname "$BIN")" "$DATA"
}
trap cleanup EXIT

fail() {
  echo "smoke-fleet: FAIL: $*" >&2
  for log in "$CLOG" "$W1LOG" "$W2LOG"; do
    echo "--- $log ---" >&2
    cat "$log" >&2
  done
  exit 1
}

wait_healthz() {
  local url="$1" pid="$2"
  for i in $(seq 1 50); do
    if curl -fsS "${url}/healthz" >/dev/null 2>&1; then return 0; fi
    kill -0 "$pid" 2>/dev/null || fail "process $pid died during startup"
    sleep 0.1
  done
  fail "healthz never came up at $url"
}

# fetch_status fetches one job's status, retrying transient curl failures
# (assertions on the body are never retried — state is deterministic).
fetch_status() {
  local id="$1" out=""
  for i in $(seq 1 5); do
    if out="$(curl -fsS "${BASE}/v1/jobs/${id}")" && [[ -n "$out" ]]; then
      echo "$out"
      return 0
    fi
    sleep 0.2
  done
  return 1
}

echo "smoke-fleet: building mosaicd..."
go build -o "$BIN" ./cmd/mosaicd

echo "smoke-fleet: starting coordinator on :${PORT} (data-dir $DATA)..."
"$BIN" -role coordinator -addr "127.0.0.1:${PORT}" -data-dir "$DATA" \
  -lease-ttl 2s -queue 16 >"$CLOG" 2>&1 &
COORD_PID=$!
wait_healthz "$BASE" "$COORD_PID"

echo "smoke-fleet: starting worker w1 on :${W1_PORT}..."
"$BIN" -role worker -addr "127.0.0.1:${W1_PORT}" -coordinator "$BASE" \
  -name w1 -workers 1 -slots 1 >"$W1LOG" 2>&1 &
W1_PID=$!
wait_healthz "http://127.0.0.1:${W1_PORT}" "$W1_PID"

# Submit a batch through the coordinator: one longer job first (the SIGKILL
# victim), then quick ones behind it.
submit() {
  local body="$1"
  local out
  out="$(curl -fsS -X POST "${BASE}/v1/jobs" -H 'Content-Type: application/json' -d "$body")" \
    || fail "submit failed: $body"
  echo "$out" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1
}
J1="$(submit '{"workload":"sgemm","scale":"small","tiles":2}')"
J2="$(submit '{"workload":"sgemm","scale":"tiny","tiles":2}')"
J3="$(submit '{"workload":"spmv","scale":"tiny","tiles":2}')"
J4="$(submit '{"workload":"bfs","scale":"tiny","tiles":2}')"
[[ -n "$J1" && -n "$J2" && -n "$J3" && -n "$J4" ]] || fail "submissions returned no IDs"
echo "smoke-fleet: submitted $J1 $J2 $J3 $J4"

# Wait until w1 is executing the long job, then kill it dead — no drain, no
# completion, exactly a crashed machine.
for i in $(seq 1 100); do
  if curl -fsS "${BASE}/v1/jobs/${J1}" | grep -q '"state": "running"'; then break; fi
  [[ "$i" -lt 100 ]] || fail "$J1 never started running on w1"
  sleep 0.1
done
kill -9 "$W1_PID"
W1_PID=""
echo "smoke-fleet: SIGKILLed w1 while $J1 was running"

echo "smoke-fleet: starting worker w2 on :${W2_PORT}..."
"$BIN" -role worker -addr "127.0.0.1:${W2_PORT}" -coordinator "$BASE" \
  -name w2 -workers 1 -slots 1 >"$W2LOG" 2>&1 &
W2_PID=$!
wait_healthz "http://127.0.0.1:${W2_PORT}" "$W2_PID"

# Every job must complete: the killed worker's lease expires (2s TTL) and
# its job requeues to w2, which also drains the rest of the batch.
for id in "$J1" "$J2" "$J3" "$J4"; do
  for i in $(seq 1 600); do
    STATUS="$(curl -fsS "${BASE}/v1/jobs/${id}")" || fail "status fetch failed for $id"
    if grep -q '"state": "done"' <<<"$STATUS"; then break; fi
    grep -q '"state": "failed"' <<<"$STATUS" && fail "$id failed: $STATUS"
    [[ "$i" -lt 600 ]] || fail "$id never finished: $STATUS"
    sleep 0.1
  done
  grep -q '"report"' <<<"$STATUS" || fail "done job $id has no report"
done
echo "smoke-fleet: all jobs done"

# The victim ran twice: once on w1 (lost), once on w2.
STATUS1="$(fetch_status "$J1")" || fail "status fetch failed for $J1"
grep -q '"attempts": 2' <<<"$STATUS1" || fail "$J1 not retried after the SIGKILL: $STATUS1"
grep -q '"worker": "w2"' <<<"$STATUS1" || fail "$J1 not completed by w2: $STATUS1"

# Fleet metrics: leases were granted, the lost lease expired and requeued.
METRICS="$(curl -fsS "${BASE}/metrics")" || fail "metrics scrape failed"
for want in \
  'mosaicd_fleet_leases_granted_total' \
  'mosaicd_leases_expired_total 1' \
  'mosaicd_jobs_requeued_total 1' \
  'mosaicd_jobs_total{state="done"} 4'; do
  grep -qF "$want" <<<"$METRICS" || fail "metrics missing '$want'"
done
echo "smoke-fleet: lease expiry and requeue visible in metrics"

# Graceful shutdown: the surviving worker and the coordinator both drain.
kill -TERM "$W2_PID"
EXIT_CODE=0; wait "$W2_PID" || EXIT_CODE=$?
[[ "$EXIT_CODE" -eq 0 ]] || fail "worker w2 exited $EXIT_CODE on SIGTERM"
grep -q 'drained cleanly' "$W2LOG" || fail "w2 log missing clean-drain line"
W2_PID=""
kill -TERM "$COORD_PID"
EXIT_CODE=0; wait "$COORD_PID" || EXIT_CODE=$?
[[ "$EXIT_CODE" -eq 0 ]] || fail "coordinator exited $EXIT_CODE on SIGTERM"
grep -q 'drained cleanly' "$CLOG" || fail "coordinator log missing clean-drain line"
COORD_PID=""
echo "smoke-fleet: clean drain"

# Durability: a restarted coordinator serves the finished jobs from disk.
"$BIN" -role coordinator -addr "127.0.0.1:${PORT}" -data-dir "$DATA" >"$CLOG" 2>&1 &
COORD_PID=$!
wait_healthz "$BASE" "$COORD_PID"
for id in "$J1" "$J2" "$J3" "$J4"; do
  STATUS="$(fetch_status "$id")" || fail "restarted coordinator lost $id"
  grep -q '"state": "done"' <<<"$STATUS" || fail "recovered $id not done: $STATUS"
  grep -q '"report"' <<<"$STATUS" || fail "recovered $id has no report"
done
STATUS1="$(fetch_status "$J1")" || fail "restarted coordinator lost $J1"
grep -q '"attempts": 2' <<<"$STATUS1" \
  || fail "recovered $J1 lost its attempt history: $STATUS1"
kill -TERM "$COORD_PID"
wait "$COORD_PID" || fail "restarted coordinator did not drain"
COORD_PID=""
echo "smoke-fleet: restart served all jobs from disk"
echo "smoke-fleet: PASS"
