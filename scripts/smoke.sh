#!/usr/bin/env bash
# smoke.sh — end-to-end smoke test of the mosaicd daemon.
#
# Usage:
#   scripts/smoke.sh [port]
#
# Builds mosaicd, starts it on the given port (default 18374), then walks
# the whole serving path with curl: wait for /healthz, submit a job, stream
# its NDJSON events, poll status to done, assert the report came back,
# scrape /metrics for the job and cache counters, and finally SIGTERM the
# daemon and assert it drains cleanly (exit 0). Any failure exits non-zero.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18374}"
BASE="http://127.0.0.1:${PORT}"
BIN="$(mktemp -d)/mosaicd"
LOG="$(mktemp)"

DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -f "$LOG"
  rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

fail() { echo "smoke: FAIL: $*" >&2; echo "--- daemon log ---" >&2; cat "$LOG" >&2; exit 1; }

echo "smoke: building mosaicd..."
go build -o "$BIN" ./cmd/mosaicd

echo "smoke: starting mosaicd on :${PORT}..."
"$BIN" -addr "127.0.0.1:${PORT}" -workers 2 -queue 16 -cache-entries 64 >"$LOG" 2>&1 &
DAEMON_PID=$!

# Wait for the daemon to come up.
for i in $(seq 1 50); do
  if curl -fsS "${BASE}/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
grep -q '"ok"' <<<"$(curl -fsS "${BASE}/healthz")" || fail "healthz never reported ok"
echo "smoke: healthz ok"

# Submit a job.
SUBMIT="$(curl -fsS -X POST "${BASE}/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"workload":"sgemm","scale":"tiny","tiles":2}')" || fail "submit failed"
JOB_ID="$(echo "$SUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)"
[[ -n "$JOB_ID" ]] || fail "submit returned no job id: $SUBMIT"
echo "smoke: submitted $JOB_ID"

# Stream its events until the stream ends (the job went terminal). The
# stream must contain the lifecycle edges and all three stages.
EVENTS="$(curl -fsS --max-time 60 "${BASE}/v1/jobs/${JOB_ID}/events")" || fail "event stream failed"
for want in '"queued"' '"running"' '"artifact"' '"run"' '"report"' '"done"'; do
  grep -q "$want" <<<"$EVENTS" || fail "event stream missing $want: $EVENTS"
done
echo "smoke: event stream complete ($(echo "$EVENTS" | wc -l) events)"

# The job must be done with a report attached.
STATUS="$(curl -fsS "${BASE}/v1/jobs/${JOB_ID}")" || fail "status fetch failed"
grep -q '"state": "done"' <<<"$STATUS" || fail "job not done: $STATUS"
grep -q '"report"' <<<"$STATUS" || fail "done job has no report: $STATUS"
grep -q '"Cycles"' <<<"$STATUS" || fail "report has no cycle count: $STATUS"
echo "smoke: job done with report"

# A second identical submission must dedup through the shared cache.
SUBMIT2="$(curl -fsS -X POST "${BASE}/v1/jobs" \
  -H 'Content-Type: application/json' \
  -d '{"workload":"sgemm","scale":"tiny","tiles":2}')" || fail "second submit failed"
JOB2="$(echo "$SUBMIT2" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)"
curl -fsS --max-time 60 "${BASE}/v1/jobs/${JOB2}/events" >/dev/null || fail "second event stream failed"

# Bad submissions are rejected up front with a did-you-mean.
BAD="$(curl -sS -X POST "${BASE}/v1/jobs" -d '{"workload":"sgem"}')"
grep -q 'did you mean' <<<"$BAD" || fail "no did-you-mean for a typo'd workload: $BAD"

# Scrape /metrics: jobs by state, queue depth, stage latencies, cache
# counters must all be exposed, and the cache must show hits from the dedup.
METRICS="$(curl -fsS "${BASE}/metrics")" || fail "metrics scrape failed"
for want in \
  'mosaicd_jobs_total{state="done"} 2' \
  'mosaicd_jobs_submitted_total 2' \
  'mosaicd_queue_depth' \
  'mosaicd_jobs_inflight' \
  'mosaicd_stage_seconds_count{stage="run"} 2' \
  'mosaicd_cache_misses_total' \
  'mosaicd_cache_evictions_total'; do
  grep -qF "$want" <<<"$METRICS" || fail "metrics missing '$want':
$METRICS"
done
HITS="$(echo "$METRICS" | sed -n 's/^mosaicd_cache_hits_total \([0-9]*\)$/\1/p')"
[[ -n "$HITS" && "$HITS" -gt 0 ]] || fail "cache hits = '$HITS'; identical submissions did not dedup"
echo "smoke: metrics ok (cache hits: $HITS)"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$DAEMON_PID"
EXIT_CODE=0
wait "$DAEMON_PID" || EXIT_CODE=$?
[[ "$EXIT_CODE" -eq 0 ]] || fail "daemon exited $EXIT_CODE on SIGTERM"
grep -q 'drained cleanly' "$LOG" || fail "daemon log missing clean-drain line"
DAEMON_PID=""
echo "smoke: clean shutdown"
echo "smoke: PASS"
