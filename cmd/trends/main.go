// Command trends prints the Figure 1 microprocessor trend series (recreated
// from the dataset the paper cites) as a table and a small log-scale ASCII
// chart of the frequency-plateau / core-count-climb crossover.
package main

import (
	"flag"
	"fmt"
	"math"
	"strings"

	"mosaicsim/internal/experiments"
	"mosaicsim/internal/parallel"
	"mosaicsim/internal/trends"
)

func main() {
	jobs := flag.Int("jobs", 0, "max concurrent simulations for the shared sweep engine (0 = all CPU cores)")
	flag.Parse()
	if *jobs > 0 {
		parallel.SetLimit(*jobs)
	}

	fmt.Println(experiments.Fig1().String())

	// ASCII sketch: log10 scale, F = frequency (MHz), C = logical cores.
	fmt.Println("log10 scale sketch (F = frequency MHz, C = logical cores):")
	const rows = 8
	pts := trends.Data()
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(pts)*5))
	}
	plot := func(val float64, col int, ch byte) {
		if val <= 0 {
			return
		}
		l := math.Log10(val)
		row := rows - 1 - int(l*float64(rows-1)/7.0+0.5)
		if row < 0 {
			row = 0
		}
		if row >= rows {
			row = rows - 1
		}
		grid[row][col*5+2] = ch
	}
	for i, p := range pts {
		plot(p.FrequencyMHz, i, 'F')
		plot(p.Cores, i, 'C')
	}
	for _, line := range grid {
		fmt.Println(string(line))
	}
	var years []string
	for _, p := range pts {
		years = append(years, fmt.Sprintf("%5d", p.Year%100))
	}
	fmt.Println(strings.Join(years, ""))
}
