// Command benchjson converts `go test -bench` text output into a structured
// JSON report, so benchmark runs can be archived and diffed across commits
// (scripts/bench.sh drives it and CI uploads the result as an artifact).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_2026-08-07.json
//
// It reads benchmark output on stdin (or -in file) and writes a JSON document
// recording, per benchmark: iterations, ns/op, B/op, allocs/op, and any
// custom metrics (e.g. the experiment headline values the harness reports
// with b.ReportMetric).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp int64              `json:"bytes_per_op,omitempty"`
	AllocsOp   int64              `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "read benchmark output from this file instead of stdin")
	out := flag.String("o", "", "write the JSON report to this file instead of stdout")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	rep := Report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if res, ok := parseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// parseLine decodes one `Benchmark... <iters> <value> <unit> ...` line. The
// testing package prints value/unit pairs: ns/op, then custom metrics, then
// -benchmem's B/op and allocs/op.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
		case "B/op":
			res.BytesPerOp = int64(val)
		case "allocs/op":
			res.AllocsOp = int64(val)
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = val
		}
	}
	return res, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
