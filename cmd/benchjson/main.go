// Command benchjson converts `go test -bench` text output into a structured
// JSON report, so benchmark runs can be archived and diffed across commits
// (scripts/bench.sh drives it and CI uploads the result as an artifact).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_2026-08-07.json
//
// It reads benchmark output on stdin (or -in file) and writes a JSON document
// recording, per benchmark: iterations, ns/op, B/op, allocs/op, and any
// custom metrics (e.g. the experiment headline values the harness reports
// with b.ReportMetric).
//
// Compare mode diffs two reports instead of converting:
//
//	benchjson -old BENCH_2026-08-09.json -new bench.json
//
// It checks every benchmark in -new whose name matches -match (default
// "Sweep|Replay", the sweep/replay regression gate CI runs) against the same
// benchmark in -old, and exits 1 if ns/op grew by more than -max-regress
// (default 0.20 = 20%) or a reported "speedup" metric shrank by more than the
// same fraction. GOMAXPROCS name suffixes ("-8") are stripped before matching
// so reports from hosts with different core counts compare.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp int64              `json:"bytes_per_op,omitempty"`
	AllocsOp   int64              `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "read benchmark output from this file instead of stdin")
	out := flag.String("o", "", "write the JSON report to this file instead of stdout")
	oldPath := flag.String("old", "", "compare mode: baseline JSON report")
	newPath := flag.String("new", "", "compare mode: candidate JSON report")
	match := flag.String("match", "Sweep|Replay", "compare mode: regex selecting benchmarks to gate")
	maxRegress := flag.Float64("max-regress", 0.20, "compare mode: allowed fractional regression before failing")
	flag.Parse()

	if *oldPath != "" || *newPath != "" {
		if *oldPath == "" || *newPath == "" {
			fatal(fmt.Errorf("compare mode needs both -old and -new"))
		}
		if err := compare(*oldPath, *newPath, *match, *maxRegress); err != nil {
			fatal(err)
		}
		return
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	rep := Report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if res, ok := parseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// parseLine decodes one `Benchmark... <iters> <value> <unit> ...` line. The
// testing package prints value/unit pairs: ns/op, then custom metrics, then
// -benchmem's B/op and allocs/op.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
		case "B/op":
			res.BytesPerOp = int64(val)
		case "allocs/op":
			res.AllocsOp = int64(val)
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = val
		}
	}
	return res, true
}

// loadReport reads one archived JSON report.
func loadReport(path string) (Report, error) {
	var rep Report
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// baseName strips the trailing -<GOMAXPROCS> suffix the testing package
// appends to benchmark names, so reports from different hosts key equally.
func baseName(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compare gates the candidate report against the baseline: for every selected
// benchmark present in both, ns/op may grow and any "speedup" metric may
// shrink by at most maxRegress. It returns an error (non-zero exit) on the
// first rule being violated, naming every offender.
func compare(oldPath, newPath, match string, maxRegress float64) error {
	re, err := regexp.Compile(match)
	if err != nil {
		return fmt.Errorf("bad -match regex: %w", err)
	}
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	baseline := map[string]Result{}
	for _, r := range oldRep.Benchmarks {
		baseline[baseName(r.Name)] = r
	}
	var checked int
	var failures []string
	for _, n := range newRep.Benchmarks {
		name := baseName(n.Name)
		if !re.MatchString(name) {
			continue
		}
		o, ok := baseline[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s has no baseline in %s (new benchmark, skipped)\n", name, oldPath)
			continue
		}
		checked++
		if o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(1+maxRegress) {
			failures = append(failures, fmt.Sprintf("%s: ns/op %.4g -> %.4g (+%.1f%%, limit +%.0f%%)",
				name, o.NsPerOp, n.NsPerOp, 100*(n.NsPerOp/o.NsPerOp-1), 100*maxRegress))
		}
		if osp, ok := o.Metrics["speedup"]; ok && osp > 0 {
			nsp := n.Metrics["speedup"]
			if nsp < osp*(1-maxRegress) {
				failures = append(failures, fmt.Sprintf("%s: speedup %.4g -> %.4g (-%.1f%%, limit -%.0f%%)",
					name, osp, nsp, 100*(1-nsp/osp), 100*maxRegress))
			}
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s ns/op %.4g -> %.4g", name, o.NsPerOp, n.NsPerOp)
		if s, ok := o.Metrics["speedup"]; ok {
			fmt.Fprintf(os.Stderr, ", speedup %.4g -> %.4g", s, n.Metrics["speedup"])
		}
		fmt.Fprintln(os.Stderr)
	}
	if checked == 0 {
		return fmt.Errorf("no benchmark matching %q present in both reports", match)
	}
	if len(failures) > 0 {
		return fmt.Errorf("regression beyond %.0f%% in %d benchmark(s):\n  %s",
			100*maxRegress, len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) within the %.0f%% regression budget\n", checked, 100*maxRegress)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
