// Command experiments regenerates the paper's tables and figures on
// MosaicSim-Go (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	experiments [-scale tiny|small|large] [-run id[,id...]|all]
//
// Experiment IDs: fig1 tab1 tab2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 fig14 storage.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mosaicsim/internal/experiments"
	"mosaicsim/internal/workloads"
)

func main() {
	scale := flag.String("scale", "small", "workload scale: tiny, small, or large")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	flag.Parse()

	var s workloads.Scale
	switch *scale {
	case "tiny":
		s = workloads.Tiny
	case "small":
		s = workloads.Small
	case "large":
		s = workloads.Large
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	r := experiments.NewRunner(s)
	for _, id := range ids {
		start := time.Now()
		rep, err := r.Run(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s regenerated in %v)\n\n", rep.ID, time.Since(start).Round(time.Millisecond))
	}
}
