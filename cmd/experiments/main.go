// Command experiments regenerates the paper's tables and figures on
// MosaicSim-Go (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	experiments [-scale tiny|small|large] [-run id[,id...]|all] [-jobs N]
//
// Experiment IDs: fig1 tab1 tab2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 fig14 storage.
//
// Independent simulations fan out across -jobs workers (default: all CPU
// cores). Results are collected by index, so stdout is byte-identical for
// every -jobs value; per-experiment timing goes to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mosaicsim/internal/experiments"
	"mosaicsim/internal/parallel"
	"mosaicsim/internal/workloads"
)

func main() {
	scale := flag.String("scale", "small", "workload scale: tiny, small, or large")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	jobs := flag.Int("jobs", 0, "max concurrent simulations (0 = all CPU cores)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	var s workloads.Scale
	switch *scale {
	case "tiny":
		s = workloads.Tiny
	case "small":
		s = workloads.Small
	case "large":
		s = workloads.Large
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if *jobs > 0 {
		parallel.SetLimit(*jobs)
	}
	r := experiments.NewRunner(s)
	// Experiments and their internal legs share one worker budget; outputs
	// are buffered and printed in request order.
	outs := make([]string, len(ids))
	took := make([]time.Duration, len(ids))
	err := parallel.ForErr(0, len(ids), func(i int) error {
		start := time.Now()
		rep, err := r.Run(ids[i])
		if err != nil {
			return fmt.Errorf("experiment %s: %w", ids[i], err)
		}
		outs[i] = rep.String()
		took[i] = time.Since(start)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i := range ids {
		fmt.Println(outs[i])
		fmt.Fprintf(os.Stderr, "(%s regenerated in %v)\n", ids[i], took[i].Round(time.Millisecond))
	}
}
