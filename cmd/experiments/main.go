// Command experiments regenerates the paper's tables and figures on
// MosaicSim-Go (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	experiments [-scale tiny|small|large] [-run id[,id...]|all] [-jobs N] [-timeout D]
//
// Experiment IDs: fig1 tab1 tab2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 fig14 storage.
//
// Independent simulations fan out across -jobs workers (default: all CPU
// cores). Results are collected by index, so stdout is byte-identical for
// every -jobs value; per-experiment timing goes to stderr. -timeout bounds
// the whole regeneration's wall-clock time: expiry aborts in-flight
// simulations and abandons queued legs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"mosaicsim/internal/experiments"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/parallel"
	"mosaicsim/internal/workloads"
)

// main delegates to realMain so deferred cleanups (the pprof profile
// writers) run on every exit path.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	scale := flag.String("scale", "small", "workload scale: tiny, small, or large")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	jobs := flag.Int("jobs", 0, "max concurrent simulations (0 = all CPU cores)")
	stepWorkers := flag.Int("step-workers", 0, "shard each simulation's tile stepping across N goroutines (bit-identical results; 0/1 = sequential)")
	replay := flag.Bool("replay", true, "answer timing-only sweep legs from recorded schedules (bit-identical results)")
	noreplay := flag.Bool("noreplay", false, "disable schedule-capture replay (overrides -replay)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole regeneration (0 = none)")
	optLevel := flag.String("O", "", "compiler optimization level applied to every workload leg: O0, O1, O2 (default O0)")
	passes := flag.String("passes", "", "explicit comma-separated pass list (overrides -O): constfold,dce,cse,strength,unroll")
	unroll := flag.Int("unroll", 0, "loop-unroll factor when the unroll pass runs (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	var s workloads.Scale
	switch *scale {
	case "tiny":
		s = workloads.Tiny
	case "small":
		s = workloads.Small
	case "large":
		s = workloads.Large
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		return 2
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	// Validate every requested id up front: an unknown id fails immediately
	// (with a did-you-mean suggestion) instead of after earlier experiments
	// have already run.
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
		if err := experiments.Resolve(ids[i]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if *jobs > 0 {
		parallel.SetLimit(*jobs)
	}
	// Ctrl-C / SIGTERM cancels the regeneration context, so an interrupted
	// run unwinds through the same clean context.Canceled path as -timeout
	// and the pprof defers above still fire.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *optLevel != "" && *passes != "" {
		fmt.Fprintln(os.Stderr, "experiments: -O and -passes are mutually exclusive")
		return 2
	}
	opt, err := ir.ParseOptConfig(*optLevel, *passes, *unroll)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 2
	}
	r := experiments.NewRunner(s)
	r.StepWorkers = *stepWorkers
	r.Replay = *replay && !*noreplay
	r.Opt = opt
	// Experiments and their internal legs share one worker budget; outputs
	// are buffered and printed in request order.
	outs := make([]string, len(ids))
	took := make([]time.Duration, len(ids))
	err = parallel.ForErrCtx(ctx, 0, len(ids), func(i int) error {
		start := time.Now()
		rep, err := r.Run(ctx, ids[i])
		if err != nil {
			return fmt.Errorf("experiment %s: %w", ids[i], err)
		}
		outs[i] = rep.String()
		took[i] = time.Since(start)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for i := range ids {
		fmt.Println(outs[i])
		fmt.Fprintf(os.Stderr, "(%s regenerated in %v)\n", ids[i], took[i].Round(time.Millisecond))
	}
	if rc := r.ReplayCounters(); rc.Hits+rc.Fallbacks+rc.Recorded > 0 {
		fmt.Fprintf(os.Stderr, "(replay: %d legs replayed, %d fell back, %d schedules recorded)\n",
			rc.Hits, rc.Fallbacks, rc.Recorded)
	}
	return 0
}
