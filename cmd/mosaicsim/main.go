// Command mosaicsim is the main simulator driver: it compiles a kernel (a
// built-in workload or a mini-C source file), generates its dynamic traces
// with the built-in DTG, simulates it on a configured system, and reports
// the system-wide performance estimate (§II of the paper). Each run is a
// sim.Session, so the CLI, the experiment harness, and the library API all
// drive the same engine.
//
// Usage:
//
//	mosaicsim -list
//	mosaicsim -workload sgemm -tiles 4 -core ooo
//	mosaicsim -workload spmv -config sys.json -json
//	mosaicsim -workload sgemm -topology configs/core-accel.json
//	mosaicsim -workload projection -topology dae-pair
//	mosaicsim -workload bfs,spmv,sgemm -tiles 8 -jobs 4
//	mosaicsim -workload bfs -tiles 8 -coherence -mesh 4 -branch dynamic
//	mosaicsim -workload lbm -tiles 8 -timeout 30s
//
// -workload accepts a comma-separated list; the runs fan out across -jobs
// workers (default: all CPU cores) and outputs print in list order.
// -timeout bounds the whole sweep's wall-clock time: when it expires,
// in-flight simulations abort mid-run and queued ones are abandoned.
//
// (For external kernel sources, use mosaic-ddg -src to inspect compilation
// and the library API to drive simulation.)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"mosaicsim/internal/config"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/parallel"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/stats"
	"mosaicsim/internal/workloads"
)

// main delegates to run so every exit path unwinds run's defers — the pprof
// CPU/heap profile writers in particular, which os.Exit inside the work loop
// would otherwise skip.
func main() {
	os.Exit(run())
}

func run() int {
	workload := flag.String("workload", "", "built-in workload name, or a comma-separated list (see -list)")
	list := flag.Bool("list", false, "list built-in workloads")
	tiles := flag.Int("tiles", 1, "SPMD tile count")
	coreKind := flag.String("core", "ooo", "core model: ooo, inorder, xeon")
	scale := flag.String("scale", "small", "workload scale: tiny, small, large")
	memKind := flag.String("mem", "tab2", "memory hierarchy: tab1 (Xeon-like) or tab2 (DAE study)")
	dram := flag.String("dram", "", "override DRAM model: simple or banked")
	coherence := flag.Bool("coherence", false, "enable the directory coherence extension")
	mesh := flag.Int("mesh", 0, "arrange tiles on a 2D mesh of this width (0 = flat fabric)")
	hop := flag.Int64("hop", 4, "NoC per-hop latency in cycles (with -mesh)")
	branch := flag.String("branch", "", "override branch predictor: none, static, dynamic, perfect")
	asJSON := flag.Bool("json", false, "emit the result as JSON instead of tables")
	cfgPath := flag.String("config", "", "system configuration JSON (overrides -core/-mem/-tiles)")
	topology := flag.String("topology", "", "declarative topology: a JSON file (see configs/) or a preset name (spmd-xeon, dae-pair, core-accel)")
	saveCfg := flag.String("save-config", "", "write the effective system configuration to a JSON file and exit")
	jobs := flag.Int("jobs", 0, "max concurrent workload simulations (0 = all CPU cores)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole sweep (0 = none)")
	noskip := flag.Bool("noskip", false, "disable event-horizon cycle skipping (naive cycle-by-cycle loop)")
	replay := flag.Bool("replay", true, "answer timing-only re-simulations from recorded schedules (bit-identical results)")
	noreplay := flag.Bool("noreplay", false, "disable schedule-capture replay (overrides -replay)")
	stepWorkers := flag.Int("step-workers", 0, "shard each simulation's tile stepping across N goroutines (bit-identical results; 0/1 = sequential)")
	optLevel := flag.String("O", "", "compiler optimization level: O0, O1, O2 (default O0)")
	passes := flag.String("passes", "", "explicit comma-separated pass list (overrides -O): constfold,dce,cse,strength,unroll")
	unroll := flag.Int("unroll", 0, "loop-unroll factor when the unroll pass runs (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-14s %s\n", w.Name, w.Desc)
		}
		return 0
	}
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "need -workload (or -list); see -h")
		return 2
	}
	// Validate the whole list up front: an unknown name fails immediately
	// (with a did-you-mean suggestion) instead of after earlier runs.
	var ws []*workloads.Workload
	for _, name := range strings.Split(*workload, ",") {
		w, err := workloads.Resolve(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mosaicsim:", err)
			return 2
		}
		ws = append(ws, w)
	}
	if *optLevel != "" && *passes != "" {
		fmt.Fprintln(os.Stderr, "mosaicsim: -O and -passes are mutually exclusive")
		return 2
	}
	opt, err := ir.ParseOptConfig(*optLevel, *passes, *unroll)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mosaicsim:", err)
		return 2
	}
	if !opt.IsDefault() {
		for i := range ws {
			ws[i] = ws[i].WithOpt(opt)
		}
	}

	configFor := func(w *workloads.Workload) (*config.SystemConfig, error) {
		var sc *config.SystemConfig
		if *topology != "" {
			if *cfgPath != "" {
				return nil, fmt.Errorf("-topology and -config are mutually exclusive")
			}
			var err error
			if _, statErr := os.Stat(*topology); statErr == nil {
				sc, err = config.Load(*topology)
			} else {
				sc, err = config.TopologyPreset(*topology)
			}
			if err != nil {
				return nil, err
			}
			if *branch != "" {
				return nil, fmt.Errorf("-branch cannot override a declarative topology; set it per tile in the file")
			}
		} else if *cfgPath != "" {
			var err error
			sc, err = config.Load(*cfgPath)
			if err != nil {
				return nil, err
			}
		} else {
			var core config.CoreConfig
			switch *coreKind {
			case "ooo":
				core = config.OutOfOrderCore()
			case "inorder":
				core = config.InOrderCore()
			case "xeon":
				core = config.XeonLikeCore()
			default:
				return nil, fmt.Errorf("unknown core %q", *coreKind)
			}
			mem := config.TableIIMem()
			if *memKind == "tab1" {
				mem = config.TableIMem()
			}
			sc = &config.SystemConfig{
				Name:  fmt.Sprintf("%s-%dx%s", w.Name, *tiles, *coreKind),
				Cores: []config.CoreSpec{{Core: core, Count: *tiles}},
				Mem:   mem,
			}
		}
		switch *dram {
		case "":
		case "simple":
			sc.Mem.DRAM.Model = config.DRAMSimple
		case "banked":
			bw := sc.Mem.DRAM.BandwidthGBs
			sc.Mem.DRAM = config.BankedDRAMDefaults(bw)
		default:
			return nil, fmt.Errorf("unknown DRAM model %q", *dram)
		}
		if *coherence {
			sc.Mem.Directory = true
		}
		if *mesh > 0 {
			sc.NoC = &config.NoCConfig{MeshWidth: *mesh, HopCycles: *hop}
		}
		if *branch != "" {
			for i := range sc.Cores {
				sc.Cores[i].Core.Branch = config.BranchPredictor(*branch)
			}
		}
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		return sc, nil
	}

	if *saveCfg != "" {
		sc, err := configFor(ws[0])
		if err != nil {
			return fatal(err)
		}
		if err := sc.Save(*saveCfg); err != nil {
			return fatal(err)
		}
		fmt.Printf("wrote %s\n", *saveCfg)
		return 0
	}

	var wScale workloads.Scale
	switch *scale {
	case "tiny":
		wScale = workloads.Tiny
	case "large":
		wScale = workloads.Large
	default:
		wScale = workloads.Small
	}

	// Ctrl-C / SIGTERM cancels the sweep context, so an interrupted run
	// unwinds through the same clean context.Canceled path as -timeout —
	// in-flight simulations abort promptly, queued legs are abandoned, and
	// the pprof defers above still fire.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Each workload simulates independently; outputs are buffered and
	// printed in list order so -jobs never reorders or interleaves them.
	if *jobs > 0 {
		parallel.SetLimit(*jobs)
	}
	outs := make([]string, len(ws))
	err = parallel.ForErrCtx(ctx, 0, len(ws), func(i int) error {
		out, err := runOne(ctx, ws[i], configFor, wScale, *scale, *asJSON, *noskip, *replay && !*noreplay, *stepWorkers)
		outs[i] = out
		return err
	})
	for _, out := range outs {
		fmt.Print(out)
	}
	if err != nil {
		return fatal(err)
	}
	return 0
}

// runOne traces and simulates one workload as a sim.Session, returning its
// full rendered output.
func runOne(ctx context.Context, w *workloads.Workload, configFor func(*workloads.Workload) (*config.SystemConfig, error),
	wScale workloads.Scale, scale string, asJSON, noskip, replay bool, stepWorkers int) (string, error) {
	sc, err := configFor(w)
	if err != nil {
		return "", err
	}
	refClock, err := soc.ReferenceClockMHz(sc)
	if err != nil {
		return "", err
	}
	s, err := sim.NewSession(sim.Options{
		Workload:             w,
		Scale:                wScale,
		Config:               sc,
		Accels:               workloads.DefaultAccelModels(refClock),
		DisableCycleSkipping: noskip,
		Replay:               replay,
		StepWorkers:          stepWorkers,
	})
	if err != nil {
		return "", err
	}
	tiles := sc.TileCount()
	var sb strings.Builder
	fmt.Fprintf(&sb, "compiling and tracing %s (%d tiles, %s scale)...\n", w.Name, tiles, scale)
	tr, err := s.Trace(ctx)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "trace: %d dynamic instructions, %d memory events\n",
		tr.TotalDynInstrs(), tr.TotalMemEvents())

	res, err := s.Run(ctx)
	if err != nil {
		return "", err
	}
	// A replayed run is answered analytically from a recorded schedule:
	// there is no live system behind it, so component-level tables are
	// summarized from the result alone.
	sys := s.System()
	if asJSON {
		enc := json.NewEncoder(&sb)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return "", err
		}
		return sb.String(), nil
	}
	printResult(&sb, res, sys, s.Replay())
	return sb.String(), nil
}

func printResult(out io.Writer, r soc.Result, sys *soc.System, rp sim.ReplayOutcome) {
	tbl := stats.NewTable("simulation result", "metric", "value")
	tbl.Row("cycles", r.Cycles)
	tbl.Row("instructions", r.Instrs)
	tbl.Row("IPC", r.IPC)
	tbl.Row("energy (uJ)", r.EnergyPJ/1e6)
	tbl.Row("  cores (uJ)", r.Energy.CoresPJ/1e6)
	tbl.Row("  caches (uJ)", (r.Energy.L1PJ+r.Energy.L2PJ+r.Energy.LLCPJ)/1e6)
	tbl.Row("  DRAM (uJ)", r.Energy.DRAMPJ/1e6)
	if r.Energy.AccelPJ > 0 {
		tbl.Row("  accelerators (uJ)", r.Energy.AccelPJ/1e6)
	}
	tbl.Row("L1 accesses", r.L1.Accesses)
	tbl.Row("L1 hit rate", r.L1.HitRate())
	if r.L2.Accesses > 0 {
		tbl.Row("L2 hit rate", r.L2.HitRate())
	}
	if r.LLC.Accesses > 0 {
		tbl.Row("LLC hit rate", r.LLC.HitRate())
	}
	tbl.Row("DRAM reads", r.DRAM.Reads)
	tbl.Row("DRAM writebacks", r.DRAM.Writebacks)
	if r.AccelCalls > 0 {
		tbl.Row("accelerator calls", r.AccelCalls)
		tbl.Row("accelerator bytes", r.AccelBytes)
	}
	stepped, skipped := rp.Stepped, rp.Skipped
	if sys != nil {
		stepped, skipped = sys.SteppedCycles, sys.SkippedCycles
	}
	tbl.Row("cycles stepped", stepped)
	tbl.Row("cycles skipped", skipped)
	tbl.Row("skip fraction", stats.SkipFraction(stepped, skipped))
	if sys != nil {
		if ok, reason := sys.ParallelEligibility(); ok {
			tbl.Row("parallel stepping", fmt.Sprintf("%d workers", sys.StepWorkers))
		} else {
			tbl.Row("parallel stepping", "sequential ("+reason+")")
		}
		if sys.ParallelPhases > 0 {
			tbl.Row("parallel phases", sys.ParallelPhases)
		}
	}
	if rp.Attempted {
		switch {
		case rp.Replayed:
			tbl.Row("replay", "hit ("+strings.Join(rp.Families, ", ")+")")
		case rp.Recorded:
			tbl.Row("replay", "schedule recorded")
		default:
			tbl.Row("replay", "fallback ("+rp.Reason+")")
		}
	}
	fmt.Fprintln(out, tbl.String())

	if sys == nil {
		// Replayed run: per-tile rollup from the result's core stats.
		per := stats.NewTable("per-tile", "tile", "instrs", "IPC", "loads", "stores", "sends", "recvs", "MAO stalls", "comm stalls")
		for i := range r.CoreStats {
			s := &r.CoreStats[i]
			per.Row(i, s.Instrs, s.IPC(), s.Loads, s.Stores, s.Sends, s.Recvs, s.MAOStalls, s.CommStalls)
		}
		fmt.Fprintln(out, per.String())
		return
	}

	per := stats.NewTable("per-tile", "tile", "instrs", "IPC", "loads", "stores", "sends", "recvs", "MAO stalls", "comm stalls")
	for i, c := range sys.Cores {
		s := c.Stats
		per.Row(i, s.Instrs, s.IPC(), s.Loads, s.Stores, s.Sends, s.Recvs, s.MAOStalls, s.CommStalls)
	}
	fmt.Fprintln(out, per.String())

	// Heterogeneous systems get a per-kind rollup so core vs accelerator
	// time is visible at a glance.
	if bks := sys.TileBreakdown(); len(bks) > 1 {
		kinds := stats.NewTable("per-kind", "kind", "tiles", "instrs", "active cycles", "stall cycles")
		for _, b := range bks {
			kinds.Row(b.Kind, b.Tiles, b.Instrs, b.ActiveCycles, b.StallCycles)
		}
		fmt.Fprintln(out, kinds.String())
	}
}

// fatal reports err and returns the failure exit code for run to return, so
// deferred cleanups (profiles) still execute.
func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "mosaicsim:", err)
	return 1
}
