// Command mosaic-ddg emits the static data-dependence graph (§II-A) of a
// kernel as Graphviz DOT or as summary statistics.
//
// Usage:
//
//	mosaic-ddg -workload sgemm           # stats
//	mosaic-ddg -workload bfs -dot        # DOT on stdout
//	mosaic-ddg -workload sgemm -O 2      # DDG of the optimized module
//	mosaic-ddg -src kernel.c -fn kernel -dot > g.dot
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"mosaicsim/internal/cc"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/stats"
	"mosaicsim/internal/workloads"
)

func main() {
	workload := flag.String("workload", "", "built-in workload name")
	src := flag.String("src", "", "mini-C source file")
	fn := flag.String("fn", "kernel", "kernel function name (with -src)")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
	printIR := flag.Bool("ir", false, "print the kernel IR")
	optLevel := flag.String("O", "", "compiler optimization level: O0, O1, O2 (default O0)")
	passes := flag.String("passes", "", "explicit comma-separated pass list (overrides -O): constfold,dce,cse,strength,unroll")
	unroll := flag.Int("unroll", 0, "loop-unroll factor when the unroll pass runs (0 = default)")
	flag.Parse()

	if *optLevel != "" && *passes != "" {
		fatal(fmt.Errorf("-O and -passes are mutually exclusive"))
	}
	opt, err := ir.ParseOptConfig(*optLevel, *passes, *unroll)
	if err != nil {
		fatal(err)
	}

	var f *ir.Function
	var g *ddg.Graph
	switch {
	case *workload != "":
		// Built-in workloads go through the session engine's Compile and
		// DDG stages, sharing the process-wide artifact cache.
		w, err := workloads.Resolve(*workload)
		if err != nil {
			fatal(err)
		}
		if !opt.IsDefault() {
			w = w.WithOpt(opt)
		}
		s, err := sim.NewSession(sim.Options{Workload: w})
		if err != nil {
			fatal(err)
		}
		ctx := context.Background()
		if f, err = s.Compile(ctx); err != nil {
			fatal(err)
		}
		if g, err = s.Graph(ctx); err != nil {
			fatal(err)
		}
	case *src != "":
		data, err := os.ReadFile(*src)
		if err != nil {
			fatal(err)
		}
		mod, err := cc.CompileWithOpt(string(data), *src, opt)
		if err != nil {
			fatal(err)
		}
		f = mod.Func(*fn)
		if f == nil {
			fatal(fmt.Errorf("no function %q in %s", *fn, *src))
		}
		g = ddg.Build(f)
	default:
		fmt.Fprintln(os.Stderr, "need -workload or -src; see -h")
		os.Exit(2)
	}

	if *printIR {
		fmt.Println(f.String())
	}
	if *dot {
		fmt.Print(g.DOT())
		return
	}
	fmt.Printf("opt: %s\n", opt)
	s := g.Stats()
	tbl := stats.NewTable("static DDG: @"+f.Ident, "metric", "value")
	tbl.Row("basic blocks", s.Blocks)
	tbl.Row("nodes (static instructions)", s.Nodes)
	tbl.Row("intra-DBB data edges", s.IntraEdges)
	tbl.Row("cross-DBB data edges", s.CrossEdges)
	tbl.Row("phi edges", s.PhiEdges)
	tbl.Row("memory operations", s.MemOps)
	fmt.Println(tbl.String())

	// Lightweight performance estimation straight from the graph (§II).
	est := g.Estimate(ddg.UnitLatency)
	an := stats.NewTable("static estimate (unit latencies)", "block", "nodes", "critical path", "ILP", "loop recurrence")
	for _, b := range est.Blocks {
		an.Row(b.Block.Ident, b.Nodes, b.CriticalPath, b.ILP, b.LoopCarried)
	}
	fmt.Println(an.String())
	fmt.Printf("max per-block ILP %.2f; dataflow-minimum initiation interval %d cycles/iteration\n",
		est.MaxILP, est.MinII)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mosaic-ddg:", err)
	os.Exit(1)
}
