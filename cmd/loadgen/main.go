// Command loadgen is the serving-throughput baseline tool for mosaicd: it
// fires N concurrent job submissions at a running daemon, waits for every
// job to reach a terminal state, and prints client-side turnaround
// percentiles plus the server's own view scraped from /metrics — so future
// serving work (sharding, batching, multi-node) has a number to beat.
//
// Usage:
//
//	mosaicd -addr :8374 &
//	loadgen -addr http://127.0.0.1:8374 -n 64 -c 16 -workload sgemm,spmv,bfs -scale tiny -tiles 2
//
// Submissions round-robin across the -workload list, so the run mixes cache
// misses (first submission of each shape) with singleflighted/cached
// repeats — the daemon's steady-state shape.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"mosaicsim/internal/jobs"
	"mosaicsim/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "http://127.0.0.1:8374", "mosaicd base URL")
	n := flag.Int("n", 32, "total submissions")
	c := flag.Int("c", 8, "concurrent clients")
	workload := flag.String("workload", "sgemm,spmv,bfs", "comma-separated workloads, assigned round-robin")
	scale := flag.String("scale", "tiny", "workload scale")
	tiles := flag.Int("tiles", 2, "tile count")
	poll := flag.Duration("poll", 25*time.Millisecond, "status poll interval")
	flag.Parse()

	names := strings.Split(*workload, ",")
	client := &http.Client{Timeout: 30 * time.Second}
	base := strings.TrimRight(*addr, "/")

	type outcome struct {
		turnaround time.Duration
		state      jobs.State
		err        error
	}
	outs := make([]outcome, *n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, *c))
	start := time.Now()
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			spec := jobs.Spec{
				Workload: strings.TrimSpace(names[i%len(names)]),
				Scale:    *scale,
				Tiles:    *tiles,
			}
			t0 := time.Now()
			st, err := submitAndWait(client, base, spec, *poll)
			outs[i] = outcome{turnaround: time.Since(t0), state: st, err: err}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	var turns []float64
	done, failed := 0, 0
	for _, o := range outs {
		if o.err != nil || o.state != jobs.StateDone {
			failed++
			if o.err != nil {
				fmt.Fprintln(os.Stderr, "loadgen:", o.err)
			}
			continue
		}
		done++
		turns = append(turns, o.turnaround.Seconds())
	}
	fmt.Printf("loadgen: %d submissions (%d done, %d failed) in %v (%.1f jobs/s)\n",
		*n, done, failed, wall.Round(time.Millisecond), float64(done)/wall.Seconds())
	if len(turns) > 0 {
		fmt.Printf("turnaround: p50 %.1fms  p95 %.1fms  mean %.1fms\n",
			stats.Percentile(turns, 50)*1e3, stats.Percentile(turns, 95)*1e3, stats.Mean(turns)*1e3)
	}
	if err := printServerView(client, base); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: metrics scrape:", err)
		return 1
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// submitAndWait posts one spec and polls its status until terminal.
func submitAndWait(client *http.Client, base string, spec jobs.Spec, poll time.Duration) (jobs.State, error) {
	body, _ := json.Marshal(spec)
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("submit %s: %s: %s", spec.Workload, resp.Status, bytes.TrimSpace(b))
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	for !st.State.Terminal() {
		time.Sleep(poll)
		r, err := client.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return "", err
		}
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			return "", err
		}
	}
	return st.State, nil
}

// printServerView scrapes /metrics and prints the serving-relevant families:
// jobs by state, cache effectiveness, and stage latencies.
func printServerView(client *http.Client, base string) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Println("server metrics:")
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "mosaicd_jobs_total"),
			strings.HasPrefix(line, "mosaicd_jobs_rejected_total"),
			strings.HasPrefix(line, "mosaicd_cache_"),
			strings.HasPrefix(line, "mosaicd_stage_seconds_sum"),
			strings.HasPrefix(line, "mosaicd_stage_seconds_count"):
			fmt.Println("  " + line)
		}
	}
	return nil
}
