// Command loadgen is the serving-throughput baseline tool for mosaicd: it
// fires N concurrent job submissions at a running daemon, waits for every
// job to reach a terminal state, and prints client-side turnaround
// percentiles plus the server's own view scraped from /metrics — so future
// serving work (sharding, batching, multi-node) has a number to beat.
//
// Usage:
//
//	mosaicd -addr :8374 &
//	loadgen -addr http://127.0.0.1:8374 -n 64 -c 16 -workload sgemm,spmv,bfs -scale tiny -tiles 2
//
// The same tool drives a fleet — point -addr at a coordinator and the
// submissions exercise lease distribution and work stealing across its
// workers. Multi-tenant runs use -tenant (comma-separated, assigned
// round-robin like -workload) and -priority; turnaround percentiles are
// then reported per tenant, which is how quota fairness is measured. Shed
// submissions (429) honor the server's Retry-After before resubmitting, up
// to -retries times.
//
// Submissions round-robin across the -workload list, so the run mixes cache
// misses (first submission of each shape) with singleflighted/cached
// repeats — the daemon's steady-state shape.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mosaicsim/internal/jobs"
	"mosaicsim/internal/stats"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "http://127.0.0.1:8374", "mosaicd base URL (standalone daemon or fleet coordinator)")
	n := flag.Int("n", 32, "total submissions")
	c := flag.Int("c", 8, "concurrent clients")
	workload := flag.String("workload", "sgemm,spmv,bfs", "comma-separated workloads, assigned round-robin")
	scale := flag.String("scale", "tiny", "workload scale")
	tiles := flag.Int("tiles", 2, "tile count")
	tenant := flag.String("tenant", "", "comma-separated tenants, assigned round-robin (empty = untenanted)")
	priority := flag.String("priority", "", "priority class for every submission (high, normal, or low; empty = server default)")
	retries := flag.Int("retries", 8, "resubmissions after a 429 shed, spaced by the server's Retry-After")
	poll := flag.Duration("poll", 25*time.Millisecond, "status poll interval")
	flag.Parse()

	names := strings.Split(*workload, ",")
	var tenants []string
	if *tenant != "" {
		tenants = strings.Split(*tenant, ",")
	}
	client := &http.Client{Timeout: 30 * time.Second}
	base := strings.TrimRight(*addr, "/")

	type outcome struct {
		tenant     string
		turnaround time.Duration
		state      jobs.State
		shed       int
		err        error
	}
	outs := make([]outcome, *n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, *c))
	start := time.Now()
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			spec := jobs.Spec{
				Workload: strings.TrimSpace(names[i%len(names)]),
				Scale:    *scale,
				Tiles:    *tiles,
				Priority: *priority,
			}
			if len(tenants) > 0 {
				spec.Tenant = strings.TrimSpace(tenants[i%len(tenants)])
			}
			t0 := time.Now()
			st, shed, err := submitAndWait(client, base, spec, *poll, *retries)
			outs[i] = outcome{tenant: spec.Tenant, turnaround: time.Since(t0), state: st, shed: shed, err: err}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	var turns []float64
	byTenant := map[string][]float64{}
	done, failed, shed := 0, 0, 0
	for _, o := range outs {
		shed += o.shed
		if o.err != nil || o.state != jobs.StateDone {
			failed++
			if o.err != nil {
				fmt.Fprintln(os.Stderr, "loadgen:", o.err)
			}
			continue
		}
		done++
		turns = append(turns, o.turnaround.Seconds())
		byTenant[o.tenant] = append(byTenant[o.tenant], o.turnaround.Seconds())
	}
	fmt.Printf("loadgen: %d submissions (%d done, %d failed, %d sheds retried) in %v (%.1f jobs/s)\n",
		*n, done, failed, shed, wall.Round(time.Millisecond), float64(done)/wall.Seconds())
	if len(turns) > 0 {
		fmt.Printf("turnaround: p50 %.1fms  p95 %.1fms  mean %.1fms\n",
			stats.Percentile(turns, 50)*1e3, stats.Percentile(turns, 95)*1e3, stats.Mean(turns)*1e3)
	}
	if len(tenants) > 0 {
		keys := make([]string, 0, len(byTenant))
		for k := range byTenant {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ts := byTenant[k]
			fmt.Printf("tenant %-12s %3d done  p50 %.1fms  p95 %.1fms\n",
				k, len(ts), stats.Percentile(ts, 50)*1e3, stats.Percentile(ts, 95)*1e3)
		}
	}
	if err := printServerView(client, base); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: metrics scrape:", err)
		return 1
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// submitAndWait posts one spec and polls its status until terminal. A 429
// shed waits out the server's Retry-After (these are load tests: the hint
// is the thing under test) and resubmits, up to retries times; the count of
// sheds survived is returned alongside the outcome.
func submitAndWait(client *http.Client, base string, spec jobs.Spec, poll time.Duration, retries int) (jobs.State, int, error) {
	body, _ := json.Marshal(spec)
	shed := 0
	var st jobs.Status
	for {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", shed, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && shed < retries {
			after, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			shed++
			if after <= 0 {
				after = 1
			}
			time.Sleep(time.Duration(after) * time.Second)
			continue
		}
		if resp.StatusCode != http.StatusCreated {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return "", shed, fmt.Errorf("submit %s: %s: %s", spec.Workload, resp.Status, bytes.TrimSpace(b))
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return "", shed, err
		}
		break
	}
	for !st.State.Terminal() {
		time.Sleep(poll)
		r, err := client.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return "", shed, err
		}
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			return "", shed, err
		}
	}
	return st.State, shed, nil
}

// printServerView scrapes /metrics and prints the serving-relevant families:
// jobs by state, cache effectiveness, stage latencies, and — against a
// coordinator — the fleet's lease counters.
func printServerView(client *http.Client, base string) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Println("server metrics:")
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "mosaicd_jobs_total"),
			strings.HasPrefix(line, "mosaicd_jobs_rejected_total"),
			strings.HasPrefix(line, "mosaicd_tenant_"),
			strings.HasPrefix(line, "mosaicd_fleet_"),
			strings.HasPrefix(line, "mosaicd_lease_"),
			strings.HasPrefix(line, "mosaicd_cache_"),
			strings.HasPrefix(line, "mosaicd_stage_seconds_sum"),
			strings.HasPrefix(line, "mosaicd_stage_seconds_count"):
			fmt.Println("  " + line)
		}
	}
	return nil
}
