// Command mosaic-trace runs the Dynamic Trace Generator (§II-A) for a
// built-in workload, optionally writing the binary trace file, and reports
// trace statistics (the §VI-B storage study for one kernel).
//
// Usage:
//
//	mosaic-trace -workload bfs -tiles 4
//	mosaic-trace -workload sgemm -o sgemm.mstr
//	mosaic-trace -read sgemm.mstr
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"mosaicsim/internal/interp"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/stats"
	"mosaicsim/internal/trace"
	"mosaicsim/internal/workloads"
)

func main() {
	workload := flag.String("workload", "", "built-in workload name")
	tiles := flag.Int("tiles", 1, "SPMD tile count")
	scale := flag.String("scale", "small", "workload scale: tiny, small, large")
	out := flag.String("o", "", "write the binary trace to this file")
	read := flag.String("read", "", "read and summarize a previously written trace")
	hot := flag.Int("hot", 0, "profile the run and print the N hottest static instructions")
	optLevel := flag.String("O", "", "compiler optimization level: O0, O1, O2 (default O0)")
	passes := flag.String("passes", "", "explicit comma-separated pass list (overrides -O): constfold,dce,cse,strength,unroll")
	unroll := flag.Int("unroll", 0, "loop-unroll factor when the unroll pass runs (0 = default)")
	flag.Parse()

	if *read != "" {
		fh, err := os.Open(*read)
		if err != nil {
			fatal(err)
		}
		defer fh.Close()
		tr, err := trace.Read(fh)
		if err != nil {
			fatal(err)
		}
		summarize(tr)
		return
	}
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "need -workload or -read; see -h")
		os.Exit(2)
	}
	w, err := workloads.Resolve(*workload)
	if err != nil {
		fatal(err)
	}
	if *optLevel != "" && *passes != "" {
		fatal(fmt.Errorf("-O and -passes are mutually exclusive"))
	}
	opt, err := ir.ParseOptConfig(*optLevel, *passes, *unroll)
	if err != nil {
		fatal(err)
	}
	if !opt.IsDefault() {
		w = w.WithOpt(opt)
	}
	fmt.Printf("opt: %s\n", w.Opt)
	var ws workloads.Scale
	switch *scale {
	case "tiny":
		ws = workloads.Tiny
	case "large":
		ws = workloads.Large
	default:
		ws = workloads.Small
	}
	if *hot > 0 {
		profileRun(w, *tiles, ws, *hot)
		return
	}
	// The trace comes from the session engine's Trace stage — the same
	// compile/trace path (and artifact cache) the simulator drivers use.
	s, err := sim.NewSession(sim.Options{Workload: w, Scale: ws, Tiles: *tiles})
	if err != nil {
		fatal(err)
	}
	tr, err := s.Trace(context.Background())
	if err != nil {
		fatal(err)
	}
	summarize(tr)
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		n, err := tr.WriteTo(fh)
		if err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, n)
	}
}

// profileRun executes the workload with instruction profiling and prints the
// hottest static instructions aggregated over tiles.
func profileRun(w *workloads.Workload, tiles int, ws workloads.Scale, topN int) {
	f, err := w.Kernel()
	if err != nil {
		fatal(err)
	}
	mem := interp.NewMemory(workloads.MemBytes)
	inst := w.Setup(mem, ws)
	res, err := interp.Run(f, mem, inst.Args, interp.Options{NumTiles: tiles, Acc: inst.Acc, Profile: true})
	if err != nil {
		fatal(err)
	}
	summarize(res.Trace)
	agg := make([]int64, f.NumInstrs())
	for _, counts := range res.Counts {
		for i, c := range counts {
			agg[i] += c
		}
	}
	idx := make([]int, len(agg))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return agg[idx[a]] > agg[idx[b]] })
	tbl := stats.NewTable(fmt.Sprintf("hottest %d static instructions", topN), "instr", "block", "op", "executions")
	for rank := 0; rank < topN && rank < len(idx); rank++ {
		i := idx[rank]
		in := f.InstrByIdx(i)
		op := in.Op.String()
		if in.Callee != "" {
			op += " " + in.Callee
		}
		tbl.Row(i, in.Parent.Ident, op, agg[i])
	}
	fmt.Println(tbl.String())
}

func summarize(tr *trace.Trace) {
	tbl := stats.NewTable("trace: "+tr.Kernel, "tile", "dyn. instrs", "BB path", "mem events", "acc calls", "comm events")
	for _, tt := range tr.Tiles {
		tbl.Row(tt.Tile, tt.DynInstrs, len(tt.BBPath), len(tt.Mem), len(tt.Acc), len(tt.Comm))
	}
	fmt.Println(tbl.String())
	size, err := tr.EncodedSize()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("total: %d dynamic instructions, %d memory events, %d bytes encoded (%.2f B/instr)\n",
		tr.TotalDynInstrs(), tr.TotalMemEvents(), size, float64(size)/float64(tr.TotalDynInstrs()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mosaic-trace:", err)
	os.Exit(1)
}
