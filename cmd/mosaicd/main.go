// Command mosaicd is the MosaicSim-Go simulation daemon: a long-running,
// network-facing service that accepts simulation jobs over HTTP, runs them
// on a bounded worker pool through the shared session engine, streams live
// per-job events, and exposes Prometheus metrics. With -data-dir it is
// durable (jobs and artifacts survive restarts), and with -role it scales
// out: one coordinator owns the queue and a fleet of workers leases jobs
// from it.
//
// Usage:
//
//	mosaicd [-role standalone|coordinator|worker] [-addr :8374]
//	        [-workers N] [-queue N] [-job-timeout D] [-drain D]
//	        [-cache-entries N] [-max-jobs N] [-step-workers N]
//	        [-replay=true|false] [-data-dir DIR] [-tenant-quota N]
//	        [-max-attempts N] [-lease-ttl D] [-heartbeat D]
//	        [-coordinator URL] [-name NAME] [-slots N]
//
// Quickstart (standalone):
//
//	mosaicd -addr :8374 -data-dir /var/lib/mosaicd &
//	curl -s localhost:8374/v1/jobs -d '{"workload":"sgemm","scale":"tiny","tiles":2}'
//	curl -s localhost:8374/v1/jobs/j000001/events   # NDJSON live stream
//	curl -s localhost:8374/v1/jobs/j000001          # status + final report
//	curl -s localhost:8374/metrics                  # Prometheus text
//
// Quickstart (fleet): one coordinator, two workers, same API:
//
//	mosaicd -role coordinator -addr :8374 -data-dir /var/lib/mosaicd &
//	mosaicd -role worker -addr :8375 -coordinator http://127.0.0.1:8374 -name w1 &
//	mosaicd -role worker -addr :8376 -coordinator http://127.0.0.1:8374 -name w2 &
//	curl -s localhost:8374/v1/jobs -d '{"workload":"sgemm","scale":"tiny"}'
//
// Admission is bounded: when -queue jobs are already waiting, submissions
// are shed with 429 (Retry-After derived from the live backlog), and
// per-tenant quotas (-tenant-quota, tenant from the spec or the
// X-Mosaic-Tenant header) stop one client from monopolizing the fleet.
// SIGINT/SIGTERM drains gracefully: admission closes, queued jobs are
// cancelled, running and leased jobs get -drain to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mosaicsim/internal/cluster"
	"mosaicsim/internal/jobs"
	"mosaicsim/internal/server"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/store"
)

func main() {
	os.Exit(run())
}

func run() int {
	role := flag.String("role", "standalone", "standalone (serve and execute), coordinator (serve, lease to a fleet), or worker (execute leases from -coordinator)")
	addr := flag.String("addr", ":8374", "listen address (host:port; :0 picks a free port)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = all CPU cores)")
	queue := flag.Int("queue", 64, "admission queue depth; submissions beyond it shed with 429")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job wall-clock cap (0 = none)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for running jobs")
	cacheEntries := flag.Int("cache-entries", 256, "artifact-cache entry cap per layer (0 = unbounded)")
	maxJobs := flag.Int("max-jobs", 4096, "retained job records; oldest terminal jobs are forgotten beyond it")
	stepWorkers := flag.Int("step-workers", 0, "default per-simulation tile-stepping goroutines for specs that leave step_workers unset (bit-identical results; 0/1 = sequential)")
	replay := flag.Bool("replay", true, "default for specs that leave replay unset: answer timing-only re-submissions from recorded schedules (bit-identical results)")
	dataDir := flag.String("data-dir", "", "durable state directory: jobs resume and artifacts persist across restarts (empty = in-memory only)")
	tenantQuota := flag.Int("tenant-quota", 0, "max live (queued+running) jobs per tenant (0 = unlimited)")
	maxAttempts := flag.Int("max-attempts", 0, "executions a job may consume across lost leases and restarts before failing (0 = default 3)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "coordinator: lease lifetime without renewal; a silent worker's jobs requeue after this")
	heartbeat := flag.Duration("heartbeat", 0, "coordinator: worker heartbeat interval (0 = lease-ttl/3)")
	coordURL := flag.String("coordinator", "", "worker: coordinator base URL to lease jobs from")
	name := flag.String("name", "", "worker: fleet-unique name (default: hostname:pid)")
	slots := flag.Int("slots", 0, "worker: concurrent leased jobs (0 = the local worker count)")
	flag.Parse()

	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("mosaicd: ")

	cache := sim.NewCache()
	cache.SetMaxEntries(*cacheEntries)

	// The store is double duty: the jobs half (coordinator/standalone only
	// — workers mirror jobs that the coordinator already persists) and the
	// artifact half (every role: warm traces and schedules survive
	// restarts and prime the cache before the first job).
	var st *store.Store
	if *dataDir != "" {
		var err error
		if st, err = store.Open(*dataDir); err != nil {
			log.Print(err)
			return 1
		}
		defer st.Close()
		imported := 0
		if err := st.Artifacts(func(name string, data []byte) error {
			if err := cache.ImportArtifact(name, data); err != nil {
				log.Printf("artifact %s: %v (skipped)", name, err)
				return nil
			}
			imported++
			return nil
		}); err != nil {
			log.Print(err)
		}
		if imported > 0 {
			log.Printf("imported %d artifact blobs from %s", imported, *dataDir)
		}
	}

	opts := jobs.Options{
		Workers:     *workers,
		QueueDepth:  *queue,
		JobTimeout:  *jobTimeout,
		MaxJobs:     *maxJobs,
		Cache:       cache,
		StepWorkers: *stepWorkers,
		Replay:      *replay,
		TenantQuota: *tenantQuota,
		MaxAttempts: *maxAttempts,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *role {
	case "standalone":
		opts.Store = st
	case "coordinator":
		opts.Store = st
		opts.Workers = -1 // every job executes on a leased worker
	case "worker":
		if *coordURL == "" {
			log.Print("-role worker requires -coordinator URL")
			return 1
		}
	default:
		log.Printf("unknown -role %q (want standalone, coordinator, or worker)", *role)
		return 1
	}

	mgr := jobs.NewManager(opts)
	api := server.New(mgr, nil)
	handler := http.Handler(api)
	var workerDone chan error
	if *role == "coordinator" {
		coord := cluster.NewCoordinator(mgr, cluster.CoordinatorOptions{
			LeaseTTL:  *leaseTTL,
			Heartbeat: *heartbeat,
		})
		go coord.Run(ctx)
		mux := http.NewServeMux()
		mux.Handle("/cluster/v1/", coord)
		mux.Handle("/", api)
		handler = mux
	}
	if *role == "worker" {
		wname := *name
		if wname == "" {
			host, _ := os.Hostname()
			wname = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		nslots := *slots
		if nslots <= 0 {
			if nslots = *workers; nslots <= 0 {
				nslots = runtime.NumCPU()
			}
		}
		w, err := cluster.NewWorker(cluster.WorkerOptions{
			Name:        wname,
			Coordinator: *coordURL,
			Manager:     mgr,
			Slots:       nslots,
		})
		if err != nil {
			log.Print(err)
			return 1
		}
		workerDone = make(chan error, 1)
		go func() { workerDone <- w.Run(ctx) }()
		log.Printf("worker %s leasing from %s (slots=%d)", wname, *coordURL, nslots)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	// Event streams outlive http.Server.Shutdown's handler wait unless
	// their requests observe the drain, so every request context descends
	// from baseCtx, which the drain path cancels after the manager stops.
	baseCtx, stopStreams := context.WithCancel(context.Background())
	defer stopStreams()
	srv := &http.Server{
		Handler:     handler,
		ReadTimeout: 30 * time.Second,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("listening on %s (role=%s workers=%d queue=%d cache-entries=%d data-dir=%q)",
		ln.Addr(), *role, *workers, *queue, *cacheEntries, *dataDir)

	select {
	case err := <-errc:
		log.Print(err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way
	log.Printf("signal received; draining (budget %s)", *drain)

	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if workerDone != nil {
		// The lease loop stopped with ctx; wait for in-flight leased jobs
		// to complete back to the coordinator (bounded by the drain budget).
		select {
		case <-workerDone:
		case <-shutCtx.Done():
			log.Print("drain deadline hit waiting for leased jobs")
		}
	}
	if err := mgr.Shutdown(shutCtx); err != nil {
		log.Print(err)
	}
	// Persist warm artifacts so the next process starts with today's traces
	// and schedules instead of recomputing them.
	if st != nil {
		exported := 0
		if err := cache.ExportArtifacts(func(name string, data []byte) error {
			fresh, err := st.PutArtifact(name, data)
			if err != nil {
				return err
			}
			if fresh {
				exported++
			}
			return nil
		}); err != nil {
			log.Printf("artifact export: %v", err)
		} else if exported > 0 {
			log.Printf("exported %d new artifact blobs to %s", exported, *dataDir)
		}
	}
	stopStreams() // ends live event streams so Shutdown's handler wait returns
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Print(err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Print(err)
		return 1
	}
	fmt.Println("mosaicd: drained cleanly")
	return 0
}
