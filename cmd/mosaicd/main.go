// Command mosaicd is the MosaicSim-Go simulation daemon: a long-running,
// network-facing service that accepts simulation jobs over HTTP, runs them
// on a bounded worker pool through the shared session engine, streams live
// per-job events, and exposes Prometheus metrics.
//
// Usage:
//
//	mosaicd [-addr :8374] [-workers N] [-queue N] [-job-timeout D]
//	        [-drain D] [-cache-entries N] [-max-jobs N] [-step-workers N]
//	        [-replay=true|false]
//
// Quickstart:
//
//	mosaicd -addr :8374 &
//	curl -s localhost:8374/v1/jobs -d '{"workload":"sgemm","scale":"tiny","tiles":2}'
//	curl -s localhost:8374/v1/jobs/j000001/events   # NDJSON live stream
//	curl -s localhost:8374/v1/jobs/j000001          # status + final report
//	curl -s localhost:8374/metrics                  # Prometheus text
//
// Admission is bounded: when -queue jobs are already waiting, submissions
// are shed with 429 instead of growing memory. All jobs share one artifact
// cache (bounded by -cache-entries), so identical submissions singleflight
// their compile/trace work. SIGINT/SIGTERM drains gracefully: admission
// closes, queued jobs are cancelled, and running jobs get -drain to finish
// before their contexts are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mosaicsim/internal/jobs"
	"mosaicsim/internal/server"
	"mosaicsim/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8374", "listen address (host:port; :0 picks a free port)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = all CPU cores)")
	queue := flag.Int("queue", 64, "admission queue depth; submissions beyond it shed with 429")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job wall-clock cap (0 = none)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for running jobs")
	cacheEntries := flag.Int("cache-entries", 256, "artifact-cache entry cap per layer (0 = unbounded)")
	maxJobs := flag.Int("max-jobs", 4096, "retained job records; oldest terminal jobs are forgotten beyond it")
	stepWorkers := flag.Int("step-workers", 0, "default per-simulation tile-stepping goroutines for specs that leave step_workers unset (bit-identical results; 0/1 = sequential)")
	replay := flag.Bool("replay", true, "default for specs that leave replay unset: answer timing-only re-submissions from recorded schedules (bit-identical results)")
	flag.Parse()

	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("mosaicd: ")

	cache := sim.NewCache()
	cache.SetMaxEntries(*cacheEntries)
	mgr := jobs.NewManager(jobs.Options{
		Workers:     *workers,
		QueueDepth:  *queue,
		JobTimeout:  *jobTimeout,
		MaxJobs:     *maxJobs,
		Cache:       cache,
		StepWorkers: *stepWorkers,
		Replay:      *replay,
	})
	api := server.New(mgr, nil)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	// Event streams outlive http.Server.Shutdown's handler wait unless
	// their requests observe the drain, so every request context descends
	// from baseCtx, which the drain path cancels after the manager stops.
	baseCtx, stopStreams := context.WithCancel(context.Background())
	defer stopStreams()
	srv := &http.Server{
		Handler:     api,
		ReadTimeout: 30 * time.Second,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("listening on %s (workers=%d queue=%d cache-entries=%d)",
		ln.Addr(), *workers, *queue, *cacheEntries)

	select {
	case err := <-errc:
		log.Print(err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way
	log.Printf("signal received; draining (budget %s)", *drain)

	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := mgr.Shutdown(shutCtx); err != nil {
		log.Print(err)
	}
	stopStreams() // ends live event streams so Shutdown's handler wait returns
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Print(err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Print(err)
		return 1
	}
	fmt.Println("mosaicd: drained cleanly")
	return 0
}
