// Package mosaicsim is a from-scratch Go implementation of MosaicSim, the
// lightweight, modular simulator for heterogeneous systems presented at
// ISPASS 2020. It provides the full paper pipeline behind a small facade:
//
//	mod, _ := mosaicsim.Compile(src, "vecadd")       // mini-C -> SSA IR
//	k, _   := mosaicsim.KernelOf(mod, "kernel")      // static DDG
//	mem    := mosaicsim.NewMemory(1 << 24)           // simulated memory
//	tr, _  := k.Trace(mem, args, 4, nil)             // dynamic trace (DTG)
//	res, _ := mosaicsim.Simulate(cfg, k, tr, nil)    // timing simulation
//
// The heavy lifting lives in the internal packages: ir (the LLVM-IR stand-in),
// cc (the kernel front end), ddg (static dependence graphs), interp (the
// dynamic trace generator), core (the graph-based tile timing model), mem
// (caches + DRAM), soc (the Interleaver), accel (accelerator models), dae
// (the Decoupled Access/Execute compiler pass), href (the hardware-reference
// model), keras (DNN performance modeling), and workloads (the benchmark
// suite).
package mosaicsim

import (
	"context"
	"fmt"

	"mosaicsim/internal/cc"
	"mosaicsim/internal/config"
	"mosaicsim/internal/dae"
	"mosaicsim/internal/ddg"
	"mosaicsim/internal/interp"
	"mosaicsim/internal/ir"
	"mosaicsim/internal/sim"
	"mosaicsim/internal/soc"
	"mosaicsim/internal/trace"
	"mosaicsim/internal/workloads"
)

// Re-exported core types. The aliases keep user code to one import.
type (
	// Memory is the byte-addressed simulated memory image.
	Memory = interp.Memory
	// Module is a compiled IR module.
	Module = ir.Module
	// Function is one IR kernel.
	Function = ir.Function
	// Trace is a kernel's dynamic trace across tiles.
	Trace = trace.Trace
	// SystemConfig describes a simulated SoC.
	SystemConfig = config.SystemConfig
	// CoreConfig holds one tile's microarchitectural resource limits.
	CoreConfig = config.CoreConfig
	// CoreSpec instantiates Count copies of a core configuration.
	CoreSpec = config.CoreSpec
	// MemConfig describes the memory hierarchy.
	MemConfig = config.MemConfig
	// TileDef declares one entry of a declarative tile list: a registered
	// kind (or explicit core config), an instance count, a DAE role, a clock
	// override, and an optional NoC mesh placement.
	TileDef = config.TileDef
	// NoCConfig arranges tiles on a 2D mesh network-on-chip.
	NoCConfig = config.NoCConfig
	// Result is a finished simulation's system-wide estimate.
	Result = soc.Result
	// System is an instantiated SoC.
	System = soc.System
	// Tile is the first-class tile interface the Interleaver steps: anything
	// implementing it (cores, accelerator managers, custom models) can be
	// composed into a System.
	Tile = soc.Tile
	// TileSpec instantiates one tile of a heterogeneous system.
	TileSpec = soc.TileSpec
	// TileBinding carries the kernel graphs and traces a declarative
	// topology's tiles replay.
	TileBinding = soc.Binding
	// KindBreakdown aggregates cycle and stall totals over tiles of a kind.
	KindBreakdown = soc.KindBreakdown
	// AccelModel is a pluggable accelerator performance model.
	AccelModel = soc.AccelModel
	// AccFunc is a functional accelerator implementation for tracing.
	AccFunc = interp.AccFunc
)

// Tile roles for declarative DAE topologies. Access/execute tiles alternate
// (access first); role-less tiles replay the whole kernel SPMD.
const (
	RoleSPMD    = config.RoleSPMD
	RoleAccess  = config.RoleAccess
	RoleExecute = config.RoleExecute
)

// Configuration presets from the paper.
var (
	// OutOfOrderCore is the Table II out-of-order core.
	OutOfOrderCore = config.OutOfOrderCore
	// InOrderCore is the Table II in-order core.
	InOrderCore = config.InOrderCore
	// XeonSystem is the Table I evaluation system with n cores.
	XeonSystem = config.XeonSystem
	// TableIIMem is the Table II DAE-study memory hierarchy.
	TableIIMem = config.TableIIMem
	// TopologyPreset returns a fresh copy of a named declarative topology
	// (spmd-xeon, dae-pair, core-accel), with did-you-mean on unknown names.
	TopologyPreset = config.TopologyPreset
	// TopologyPresets lists the named topology presets.
	TopologyPresets = config.TopologyPresets
	// LoadSystemConfig reads a system/topology configuration from JSON.
	LoadSystemConfig = config.Load
	// RegisterTileKind extends the declarative tile-kind registry with a
	// custom core preset (call from init; see soc.RegisterTileKind).
	RegisterTileKind = soc.RegisterTileKind
	// TileKinds lists the registered declarative tile kinds.
	TileKinds = soc.TileKinds
	// BuildSystem is the single declarative topology builder: it expands a
	// config's tile list, binds each tile to its kernel graph by role, and
	// applies the (validated) NoC geometry.
	BuildSystem = soc.Build
)

// NewMemory allocates a simulated memory image.
func NewMemory(bytes int64) *Memory { return interp.NewMemory(bytes) }

// Compile compiles mini-C kernel source into a verified IR module (no
// optimization — the O0 pipeline).
func Compile(src, moduleName string) (*Module, error) { return cc.Compile(src, moduleName) }

// OptConfig selects the IR optimization pipeline (DESIGN.md §5g): a level
// (O0/O1/O2), or an explicit pass list, plus the unroll factor. The zero
// value is O0 — the empty pipeline.
type OptConfig = ir.OptConfig

// ParseOptConfig validates and normalizes a level/pass-list/unroll triple
// the way the CLI flags -O/-passes/-unroll do.
var ParseOptConfig = ir.ParseOptConfig

// CompileWithOpt compiles mini-C and runs the selected optimization
// pipeline, verifying the module after every pass.
func CompileWithOpt(src, moduleName string, opt OptConfig) (*Module, error) {
	return cc.CompileWithOpt(src, moduleName, opt)
}

// ParseIR parses the textual IR format directly.
func ParseIR(src string) (*Module, error) { return ir.Parse(src) }

// Kernel bundles a kernel function with its static data-dependence graph.
type Kernel struct {
	Fn    *Function
	Graph *ddg.Graph
}

// KernelOf extracts a function from a module and builds its DDG.
func KernelOf(m *Module, name string) (*Kernel, error) {
	f := m.Func(name)
	if f == nil {
		return nil, fmt.Errorf("mosaicsim: module %q has no function %q", m.Ident, name)
	}
	return &Kernel{Fn: f, Graph: ddg.Build(f)}, nil
}

// Trace natively executes the kernel on tiles SPMD tiles (the Dynamic Trace
// Generator), producing the control-flow, memory, communication, and
// accelerator traces the timing simulation replays. acc supplies functional
// implementations for any acc_* intrinsics the kernel invokes.
func (k *Kernel) Trace(mem *Memory, args []uint64, tiles int, acc map[string]AccFunc) (*Trace, error) {
	res, err := interp.Run(k.Fn, mem, args, interp.Options{NumTiles: tiles, Acc: acc})
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// Simulate runs the timing simulation of a traced kernel on the configured
// homogeneous system and returns the system-wide estimate.
func Simulate(cfg *SystemConfig, k *Kernel, tr *Trace, accels map[string]AccelModel) (Result, error) {
	return SimulateCtx(context.Background(), cfg, k, tr, accels)
}

// SimulateCtx is Simulate under a context: cancelling ctx aborts the run
// mid-simulation with an error wrapping context.Canceled.
func SimulateCtx(ctx context.Context, cfg *SystemConfig, k *Kernel, tr *Trace, accels map[string]AccelModel) (Result, error) {
	sys, err := soc.NewSPMD(cfg, k.Graph, tr, accels)
	if err != nil {
		return Result{}, err
	}
	if err := sys.Run(ctx, 0); err != nil {
		return Result{}, err
	}
	return sys.Result(), nil
}

// NewSystem builds a heterogeneous system from per-tile specs for callers
// that mix core kinds or kernels (e.g. DAE pairs).
func NewSystem(name string, tiles []TileSpec, memCfg MemConfig, accels map[string]AccelModel) (*System, error) {
	return soc.New(name, tiles, memCfg, accels)
}

// Decouple applies the DeSC-style Decoupled Access/Execute compiler pass
// (§VII-A), returning access and execute kernels to run on paired tiles
// (even tiles access, odd tiles execute).
func Decouple(k *Kernel) (access, execute *Kernel, err error) {
	s, err := dae.Slice(k.Fn)
	if err != nil {
		return nil, nil, err
	}
	return &Kernel{Fn: s.Access, Graph: ddg.Build(s.Access)},
		&Kernel{Fn: s.Execute, Graph: ddg.Build(s.Execute)}, nil
}

// TraceTiles natively executes a possibly different kernel per tile (DAE
// pairs) with shared arguments.
func TraceTiles(fns []*Function, mem *Memory, args []uint64, acc map[string]AccFunc) (*Trace, error) {
	res, err := interp.RunTiles(fns, mem, args, interp.Options{Acc: acc})
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// Session engine re-exports. The cancellable pipeline engine (internal/sim)
// is the preferred library entry point: a Session owns the whole
// Compile → DDG → Trace → BuildSystem → Run → Report pipeline for one
// workload, shares compilations and traces through a content-keyed cache,
// and honors context cancellation end to end:
//
//	w, _ := mosaicsim.ResolveWorkload("sgemm")
//	s, _ := mosaicsim.NewSession(mosaicsim.SessionOptions{
//		Workload: w, Scale: mosaicsim.ScaleSmall, Config: mosaicsim.XeonSystem(4),
//	})
//	res, err := s.Run(ctx)
type (
	// Session drives one kernel through the pipeline, stage by stage.
	Session = sim.Session
	// SessionOptions configures a Session.
	SessionOptions = sim.Options
	// StageError attributes a pipeline failure to its stage and kernel.
	StageError = sim.StageError
	// Stage names one pipeline stage.
	Stage = sim.Stage
	// SliceMode selects SPMD replication or DAE pair decomposition.
	SliceMode = sim.SliceMode
	// ArtifactCache shares compile/DDG/trace artifacts across sessions.
	ArtifactCache = sim.Cache
	// Workload is one benchmark (or an ad-hoc kernel with a Setup function).
	Workload = workloads.Workload
	// Instance is one generated run of a workload (its arguments, optional
	// result check, and functional accelerator implementations).
	Instance = workloads.Instance
	// Scale selects a workload input size.
	Scale = workloads.Scale
)

// Slicing modes and workload scales.
const (
	SliceNone  = sim.SliceNone
	SliceDAE   = sim.SliceDAE
	ScaleTiny  = workloads.Tiny
	ScaleSmall = workloads.Small
	ScaleLarge = workloads.Large
)

// Session engine constructors and workload lookups.
var (
	// NewSession validates options and binds a session to its cache.
	NewSession = sim.NewSession
	// NewArtifactCache builds a private artifact cache (sessions otherwise
	// share one process-wide cache).
	NewArtifactCache = sim.NewCache
	// ResolveWorkload finds a built-in workload by name, with a did-you-mean
	// suggestion on unknown names.
	ResolveWorkload = workloads.Resolve
	// WorkloadNames lists the built-in workload names.
	WorkloadNames = workloads.Names
)

// Args helpers for building kernel argument lists.
var (
	// ArgPtr encodes a pointer argument.
	ArgPtr = interp.ArgPtr
	// ArgI64 encodes an integer argument.
	ArgI64 = interp.ArgI64
	// ArgF64 encodes a float argument.
	ArgF64 = interp.ArgF64
)
